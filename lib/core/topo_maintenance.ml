module Graph = Netgraph.Graph
module Tree = Netgraph.Tree
module Network = Hardware.Network
module Anr = Hardware.Anr
module Engine = Sim.Engine

type method_ = Branching | Flood | Dfs_token

type params = {
  method_ : method_;
  period : float;
  max_rounds : int;
  full_view : bool;
  preseed : bool;
  cost : Hardware.Cost_model.t;
  dfs_child_order : (self:int -> children:int list -> int list) option;
  dmax : int option;
  stagger : Sim.Rng.t option;
  trace : Sim.Trace.t option;
  registry : Hardware.Registry.t option;
  reset_on_recover : bool;
  origins : int list option;
  recover : Hardware.Recover.t option;
}

let default_params () =
  {
    method_ = Branching;
    period = 64.0;
    max_rounds = 64;
    full_view = false;
    preseed = false;
    cost = Hardware.Cost_model.new_model ();
    dfs_child_order = None;
    dmax = None;
    stagger = None;
    trace = None;
    registry = None;
    reset_on_recover = false;
    origins = None;
    recover = None;
  }

type event = { at : float; edge : int * int; up : bool }

type node_event = { at_time : float; node : int; alive : bool }

type outcome = {
  converged : bool;
  rounds : int;
  syscalls : int;
  hops : int;
  time : float;
  correct_per_round : int list;
  dbs : Topology.db array;
}

(* The branching-paths relay needs the broadcast's decomposition; the
   origin computes it once on its believed graph and the message
   carries it, so relays reuse it instead of rebuilding the tree and
   labelling per delivery (the same carried-labelling shape as
   {!Branching_paths.msg}). *)
type msg = {
  origin : int;
  seq : int;
  views : Topology.local_view list;
  labelling : Labels.t option;
}

(* Per-node link state, indexed by the local link index (1..deg) of
   the CSR layout: one byte per incident link, updated in O(1) by the
   data-link notification — nothing is re-materialised per round. *)
type node_state = {
  mutable db : Topology.db;
  mutable seq : int;
  local_up : Bytes.t;  (* byte [i-1] = link [i] believed up *)
  relayed : (int * int, unit) Hashtbl.t;
}

type tour_item = Visit of int | Emit of int

(* Depth-first tour with a configurable child order, truncated after
   the last first-visit (see {!Walks}); iterative worklist, so a deep
   tree costs Θ(n), not Θ(n·depth). *)
let tour_with_order tree order =
  let rec go acc = function
    | [] -> List.rev acc
    | Visit v :: rest ->
        let kids = order ~self:v ~children:(Tree.children tree v) in
        let rest =
          List.fold_right (fun c work -> Visit c :: Emit v :: work) kids rest
        in
        go (v :: acc) rest
    | Emit v :: rest -> go (v :: acc) rest
  in
  let tour = go [] [ Visit (Tree.root tree) ] in
  let seen = Hashtbl.create 16 in
  let last_new = ref 0 in
  List.iteri
    (fun i v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.replace seen v ();
        last_new := i
      end)
    tour;
  List.filteri (fun i _ -> i <= !last_new) tour

let cyclic_child_order ~ring ~self ~children =
  let position v =
    let rec index i = function
      | [] -> None
      | x :: rest -> if x = v then Some i else index (i + 1) rest
    in
    index 0 ring
  in
  match position self with
  | None -> children
  | Some my_pos ->
      let len = List.length ring in
      let rank c =
        match position c with
        | Some p -> ((p - my_pos + len) mod len, 0)
        | None -> (len, c)  (* pendants after ring members *)
      in
      List.sort (fun a b -> compare (rank a) (rank b)) children

let deadlock_example_graph () =
  (* triangle 0-1-2 with pendants 3,4,5 on 0,1,2 respectively *)
  let g =
    Graph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 0); (0, 3); (1, 4); (2, 5) ]
  in
  (g, [ (0, 3); (1, 4); (2, 5) ])

let run ?(params = default_params ()) ?(node_events = []) ?chaos ~graph
    ~events () =
  let n = Graph.n graph in
  let engine = Engine.create ~queue_capacity:n () in
  let states =
    Array.init n (fun v ->
        {
          db = Topology.create ();
          seq = 0;
          local_up = Bytes.make (Graph.degree graph v) '\001';
          relayed = Hashtbl.create 16;
        })
  in
  let origin_list =
    match params.origins with
    | None -> None
    | Some [] -> invalid_arg "Topo_maintenance.run: origins must be non-empty"
    | Some l ->
        List.iter
          (fun o ->
            if o < 0 || o >= n then
              invalid_arg "Topo_maintenance.run: origin out of range")
          l;
        Some l
  in
  let is_origin =
    match origin_list with
    | None -> fun _ -> true
    | Some l ->
        let tbl = Hashtbl.create 16 in
        List.iter (fun o -> Hashtbl.replace tbl o ()) l;
        fun v -> Hashtbl.mem tbl v
  in
  (* The node's own view as a delta: collect the down local links into
     an exact-size sorted array (local indices ascend with peer id in
     the CSR layout).  Healthy nodes share {!Topology.no_downs}. *)
  let own_view v =
    let st = states.(v) in
    let deg = Graph.degree graph v in
    let count = ref 0 in
    for i = 0 to deg - 1 do
      if Bytes.get st.local_up i = '\000' then incr count
    done;
    let downs =
      if !count = 0 then Topology.no_downs
      else begin
        let arr = Array.make !count 0 in
        let j = ref 0 in
        for i = 1 to deg do
          if Bytes.get st.local_up (i - 1) = '\000' then begin
            arr.(!j) <- Graph.edge_target graph (Graph.edge_id graph v i);
            incr j
          end
        done;
        arr
      end
    in
    { Topology.origin = v; seq = st.seq; downs }
  in
  let obs_broadcasts =
    match params.registry with
    | Some r when Hardware.Registry.enabled r ->
        Some
          (Hardware.Registry.counter r "maint.broadcasts"
             ~help:"periodic topology broadcasts initiated")
    | _ -> None
  in
  let robs =
    match params.recover with
    | None -> None
    | Some _ -> Hardware.Recover.obs params.registry
  in
  (* per-origin resume closures, stashed at start so the recovery hook
     can trigger an immediate out-of-period rebroadcast (DESIGN.md §16);
     the periodic timer chain itself never stops ticking *)
  let resumes : (unit -> unit) option array = Array.make n None in
  (* send over each believed-up local link, in increasing peer order —
     iterates the byte vector, allocating only the 2-node walks *)
  let send_local_links ctx v st ~except m ~label =
    let deg = Graph.degree graph v in
    for i = 1 to deg do
      if Bytes.get st.local_up (i - 1) = '\001' then begin
        let peer = Graph.edge_target graph (Graph.edge_id graph v i) in
        if Some peer <> except then
          Network.send_walk ~label ctx ~walk:[ v; peer ] m
      end
    done
  in
  let broadcast ctx =
    (match obs_broadcasts with
    | Some c -> Hardware.Registry.incr c
    | None -> ());
    let v = Network.self ctx in
    let st = states.(v) in
    st.seq <- st.seq + 1;
    Topology.set_own st.db (own_view v);
    let views =
      if params.full_view then Topology.all_views st.db else [ own_view v ]
    in
    let believed = Topology.believed_graph st.db ~graph in
    match params.method_ with
    | Flood ->
        let m = { origin = v; seq = st.seq; views; labelling = None } in
        Hashtbl.replace st.relayed (v, st.seq) ();
        send_local_links ctx v st ~except:None m ~label:"topo-flood"
    | Branching ->
        let tree = Netgraph.Spanning.bfs_tree believed ~root:v in
        let labelling = Labels.compute tree in
        let m = { origin = v; seq = st.seq; views; labelling = Some labelling } in
        Hashtbl.replace st.relayed (v, st.seq) ();
        List.iter
          (fun path ->
            Network.send_walk ~label:"topo-bpaths" ~copy_at:(fun _ -> true) ctx
              ~walk:path m)
          (Labels.paths_from labelling v)
    | Dfs_token -> (
        let tree = Netgraph.Spanning.bfs_tree believed ~root:v in
        let order =
          match params.dfs_child_order with
          | Some f -> fun ~self ~children -> f ~self ~children
          | None -> fun ~self:_ ~children -> children
        in
        match tour_with_order tree order with
        | [] | [ _ ] -> ()
        | tour ->
            let m = { origin = v; seq = st.seq; views; labelling = None } in
            let marked = Walks.mark_first_visits tour in
            let route =
              Anr.of_walk_marked (Network.graph (Network.network ctx)) marked
            in
            Network.send ~label:"topo-dfs" ctx ~route m)
  in
  let relay ctx m =
    let v = Network.self ctx in
    let st = states.(v) in
    if not (Hashtbl.mem st.relayed (m.origin, m.seq)) then begin
      Hashtbl.replace st.relayed (m.origin, m.seq) ();
      true
    end
    else false
  in
  let handlers v =
    {
      Network.on_start =
        (fun ctx ->
          let st = states.(v) in
          (* links that failed before the start (preset faults) *)
          let net = Network.network ctx in
          let deg = Graph.degree graph v in
          for i = 1 to deg do
            let peer = Graph.edge_target graph (Graph.edge_id graph v i) in
            if not (Network.link_is_up net v peer) then
              Bytes.set st.local_up (i - 1) '\000'
          done;
          Topology.set_own st.db (own_view v);
          if is_origin v then begin
            if params.recover <> None then
              resumes.(v) <-
                Some
                  (fun () ->
                    Network.set_timer ~label:"topo-resume" ctx ~delay:0.0
                      (fun () -> broadcast ctx));
            let rec rearm () =
              Network.set_timer ~label:"topo-period" ctx ~delay:params.period
                (fun () ->
                  broadcast ctx;
                  rearm ())
            in
            match params.stagger with
            | None ->
                broadcast ctx;
                rearm ()
            | Some rng ->
                (* first broadcast at a random phase within the period *)
                Network.set_timer ~label:"topo-stagger" ctx
                  ~delay:(Sim.Rng.float rng params.period) (fun () ->
                    broadcast ctx;
                    rearm ())
          end);
      on_message =
        (fun ctx ~via m ->
          let st = states.(v) in
          ignore (Topology.update_all st.db m.views : bool);
          match params.method_ with
          | Dfs_token -> ()
          | Flood ->
              if relay ctx m then
                send_local_links ctx v st ~except:via m ~label:"topo-flood"
          | Branching -> (
              if relay ctx m then
                match m.labelling with
                | None -> ()
                | Some labelling ->
                    if Tree.mem (Labels.tree labelling) v then
                      List.iter
                        (fun path ->
                          Network.send_walk ~label:"topo-bpaths"
                            ~copy_at:(fun _ -> true) ctx ~walk:path m)
                        (Labels.paths_from labelling v)));
      on_link_change =
        (fun _ctx ~peer ~up ->
          let st = states.(v) in
          Bytes.set st.local_up
            (Graph.link_index graph v peer - 1)
            (if up then '\001' else '\000');
          Topology.set_own st.db (own_view v));
    }
  in
  let net =
    Network.create ?trace:params.trace ?registry:params.registry
      ?dmax:params.dmax ~dmax_policy:`Drop ~engine ~cost:params.cost ~graph
      ~handlers ()
  in
  if params.preseed then begin
    (* full pre-failure knowledge at every node, as ONE shared seq-0
       base array — Θ(n) total, not Θ(n²) hashtable entries *)
    let base =
      Array.init n (fun o ->
          { Topology.origin = o; seq = 0; downs = Topology.no_downs })
    in
    Array.iter (fun st -> Topology.attach_base st.db base) states
  end;
  (* the legacy event/node_event lists and the chaos plan all flow
     through the same Fault_plan arming, so every injection path gets
     the recovery hook below *)
  let plan =
    List.map
      (fun { at; edge = u, v; up } -> Hardware.Fault_plan.Link_set { at; u; v; up })
      events
    @ List.map
        (fun { at_time; node; alive } ->
          Hardware.Fault_plan.Node_set { at = at_time; node; alive })
        node_events
    @ Option.value ~default:[] chaos
  in
  let on_node ~node ~alive =
    if alive && params.reset_on_recover then begin
      (* the paper's recovering NCU rejoins with no remote knowledge;
         its own sequence counter survives the crash, or its first
         post-recovery views would lose the freshness race against
         stale entries other nodes still hold (the ARPANET
         sequence-number lesson) *)
      let st = states.(node) in
      st.db <- Topology.create ();
      Hashtbl.reset st.relayed;
      Topology.set_own st.db (own_view node)
    end;
    if alive then
      (* round resumption: a recovering origin rebroadcasts now rather
         than waiting out the rest of its period — re-seeding its own
         (possibly just reset) view into the network immediately *)
      match resumes.(node) with
      | Some resume ->
          (match robs with
          | Some o -> Hardware.Registry.incr o.Hardware.Recover.r_resumes
          | None -> ());
          resume ()
      | None -> ()
  in
  Hardware.Fault_plan.arm ~on_node net plan;
  Network.start_all net;
  let actual_graph () =
    Graph.of_edges ~n
      (List.filter (fun (u, v) -> Network.link_is_up net u v) (Graph.edges graph))
  in
  let correct_count =
    match origin_list with
    | None ->
        fun () ->
          let actual = actual_graph () in
          Graph.fold_nodes
            (fun v acc ->
              if Topology.consistent_with states.(v).db ~graph ~actual ~node:v
              then acc + 1
              else acc)
            graph 0
    | Some origins ->
        (* dissemination check for the restricted-origin mode: a node
           is correct when it holds every origin's freshest view —
           Θ(n·k) per round instead of n believed-graph rebuilds *)
        fun () ->
          Graph.fold_nodes
            (fun v acc ->
              let covered =
                List.for_all
                  (fun o ->
                    match Topology.find states.(v).db o with
                    | Some view -> view.Topology.seq >= states.(o).seq
                    | None -> false)
                  origins
              in
              if covered then acc + 1 else acc)
            graph 0
  in
  let epsilon = 1e-6 in
  let rec rounds_loop k progress =
    let horizon = (float_of_int k *. params.period) -. epsilon in
    ignore (Engine.run ~until:horizon engine : Engine.outcome);
    let correct = correct_count () in
    let progress = correct :: progress in
    if correct = n then (true, k, progress)
    else if k >= params.max_rounds then (false, k, progress)
    else rounds_loop (k + 1) progress
  in
  let converged, rounds, progress = rounds_loop 1 [] in
  Network.publish_distributions net;
  (match params.registry with
  | Some r when Hardware.Registry.enabled r ->
      Hardware.Registry.set
        (Hardware.Registry.gauge r "maint.rounds"
           ~help:"broadcast rounds at the final convergence check")
        (float_of_int rounds)
  | _ -> ());
  let m = Network.metrics net in
  {
    converged;
    rounds;
    syscalls = Hardware.Metrics.syscalls m;
    hops = Hardware.Metrics.hops m;
    time = Engine.now engine;
    correct_per_round = List.rev progress;
    dbs = Array.map (fun st -> st.db) states;
  }
