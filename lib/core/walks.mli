(** Tree walks used by the single-message broadcasts of Section 3.

    A depth-first token (and the layered variant of the footnote)
    traverses the spanning tree as one packet whose ANR header encodes
    an Euler tour; selective copies are dropped at each first visit. *)

val euler_tour : Netgraph.Tree.t -> int list
(** The closed depth-first tour from the root: each tree edge is
    crossed exactly twice, children in increasing order;
    [2 * size - 1] entries. *)

val euler_tour_truncated : Netgraph.Tree.t -> int list
(** The tour cut after the last first-visit: the walk ends at the
    deepest-last leaf instead of returning to the root, so the final
    NCU delivery lands on a node that still needs the message. *)

val restrict_to_depth : Netgraph.Tree.t -> int -> Netgraph.Tree.t
(** The subtree spanning all members within the given depth of the
    root (the "layer-at-a-time" restriction of the footnote). *)

val mark_first_visits : int list -> (int * bool) list
(** Pair every walk position with a flag that is [true] exactly on the
    first occurrence of each node — the copy marks for a tour-based
    broadcast. *)
