(** The branching-paths broadcast of Section 3.1.

    The broadcaster computes a minimum-hop spanning tree of its
    current view, labels it ({!Labels}), and decomposes it into
    monochromatic paths.  It ships the message — which carries a
    description of the tree — over every path that starts at itself,
    with a selective copy at each path node; each node that heads
    further paths relays the message onto them upon its (single)
    copy.

    Properties reproduced here (and checked in the test suite):
    - exactly [n] system calls per broadcast on a failure-free network
      (the root's trigger plus one copy per other node);
    - completion within [1 + log2 n] path-generations (Theorem 2);
    - one-way: every tree link is traversed only away from the root,
      so a link failure silently truncates the affected paths and the
      maintenance protocol converges (Theorem 1). *)

type msg =
  | Data of {
      origin : int;  (** the broadcasting node *)
      labelling : Labels.t;
          (** the broadcast tree's labelling and path decomposition —
              the "tree description" the paper puts in the message so
              path heads recognise themselves.  Every relay would
              recompute the identical decomposition from the same tree,
              so the message shares the root's artifact instead of
              shipping raw edges and re-labelling at every head (which
              made setup quadratic). *)
      attempt : int;
          (** 0 for the original broadcast; [k > 0] marks the [k]-th
              retransmission under recovery.  Relays forward once per
              attempt; acceptance ([reached]) is idempotent, keeping
              application-level delivery at-most-once. *)
    }
  | Ack of { src : int }
      (** recovery only: [src] acknowledges its acceptance of the
          current attempt, routed up the broadcast tree to the origin *)

val tree_for : view:Netgraph.Graph.t -> root:int -> Netgraph.Tree.t
(** The minimum-hop (BFS) spanning tree of the root's component of its
    view — step (1) of the periodic algorithm. *)

val predicted_time_units : Netgraph.Tree.t -> int
(** The number of path-generations the broadcast needs — Theorem 2
    bounds this by [1 + log2 n].  Measured wall time is
    [(1 + this) * P] under the deterministic C=0 model (the extra unit
    is the root's own trigger activation). *)

val spec :
  ?precomputed:Labels.t ->
  ?routes:Hardware.Anr.route array array ->
  ?recovery:Broadcast.Recovery.t ->
  multicast:bool ->
  reached:bool array ->
  view:Netgraph.Graph.t ->
  int ->
  msg Hardware.Network.handlers
(** Low-level handler factory (one node's handlers), for embedding the
    broadcast in custom harnesses — {!run} wraps it.

    [precomputed] is the labelling of [tree_for ~view ~root] computed
    ahead of time (e.g. by a {!Compile.Topology} artifact); the root
    skips its setup step and ships it directly.  [routes] is the
    matching compiled route table — [routes.(v)] holds the compiled
    copy-all headers of [Labels.paths_from labelling v], in the same
    order — letting every head skip per-send header construction.
    Both are pure amortisations: the run's packets, metrics and
    timings are identical with or without them, which
    test/suite_compile.ml checks. *)

val run :
  ?config:Broadcast.config ->
  ?multicast:bool ->
  ?precomputed:Labels.t ->
  ?routes:Hardware.Anr.route array array ->
  graph:Netgraph.Graph.t ->
  root:int ->
  unit ->
  Broadcast.result
(** [multicast] (default true) models the PARIS primitive that ships
    one packet per outgoing link in a single activation — the paths
    from one head go through distinct child links, so the whole relay
    costs one time unit.  With [multicast:false] each path costs its
    own activation (ablation A1): the broadcast stays at n deliveries
    but its completion time degrades from O(log n) toward
    O(log n * max-degree).

    When [config.chaos] carries a fault plan, [routes] is ignored: the
    plan mutates topology mid-run, and compiled routes must never be
    replayed across such a mutation (see {!Compile.Topology.routes},
    which refuses to hand them out in the first place).

    When [config.recover] is set, the run is self-healing: receivers
    acknowledge each accepted attempt up the broadcast tree and the
    root retransmits under capped exponential backoff until everyone
    acked or the retry budget is spent (DESIGN.md §16). *)
