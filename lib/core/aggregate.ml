module Graph = Netgraph.Graph
module Tree = Netgraph.Tree
module Network = Hardware.Network

type result = {
  value : int;
  expected : int;
  time : float;
  syscalls : int;
  hops : int;
  messages : int;
  t_opt_complete : float;
  max_route : int;
}

type msg = Partial of int

(* Match the shape's breadth-first numbering (0 = root) with the
   graph's breadth-first order from [root], so that tree-adjacent
   nodes tend to be graph-close. *)
let embedding graph ~root shape =
  let order = Netgraph.Traversal.bfs_order graph ~root in
  let placement = Array.of_list order in
  let tree = Optimal_tree.to_netgraph_tree shape in
  Tree.map_nodes (fun v -> placement.(v)) tree

let run ?inputs ?(root = 0) ~c ~p ~graph ~spec () =
  if not (Graph.is_connected graph) then
    invalid_arg "Aggregate.run: the graph must be connected";
  let n = Graph.n graph in
  if root < 0 || root >= n then invalid_arg "Aggregate.run: root out of range";
  let params = { Optimal_tree.c; p } in
  let shape = Optimal_tree.optimal_tree params ~n in
  let tree = embedding graph ~root shape in
  let inputs =
    match inputs with
    | None ->
        let alphabet = Array.of_list spec.Sensitive.alphabet in
        Array.init n (fun i -> alphabet.(i mod Array.length alphabet))
    | Some a ->
        if Array.length a <> n then
          invalid_arg "Aggregate.run: inputs length mismatch";
        Array.iter
          (fun x ->
            if not (List.mem x spec.Sensitive.alphabet) then
              invalid_arg "Aggregate.run: input outside the alphabet")
          a;
        a
  in
  let engine = Sim.Engine.create () in
  let cost = Hardware.Cost_model.deterministic ~c ~p in
  let acc = Array.copy inputs in
  let pending = Array.make n 0 in
  let finish_time = ref nan in
  let root_value = ref None in
  let max_route = ref 0 in
  let forward ctx v =
    match Tree.parent tree v with
    | None ->
        root_value := Some acc.(v);
        finish_time := Sim.Engine.now engine
    | Some parent -> (
        match Netgraph.Paths.shortest_path graph ~src:v ~dst:parent with
        | Some walk ->
            max_route := max !max_route (List.length walk - 1);
            Network.send_walk ~label:"aggregate" ctx ~walk (Partial acc.(v))
        | None -> assert false (* connected *))
  in
  let handlers v =
    {
      Network.on_start =
        (fun ctx ->
          pending.(v) <- List.length (Tree.children tree v);
          if pending.(v) = 0 then forward ctx v);
      on_message =
        (fun ctx ~via:_ (Partial x) ->
          acc.(v) <- spec.Sensitive.op acc.(v) x;
          pending.(v) <- pending.(v) - 1;
          if pending.(v) = 0 then forward ctx v);
      on_link_change = (fun _ ~peer:_ ~up:_ -> ());
    }
  in
  let net = Network.create ~engine ~cost ~graph ~handlers () in
  Network.start_all ~label:"trigger" net;
  (match Sim.Engine.run engine with
  | Sim.Engine.Quiescent -> ()
  | _ -> assert false);
  let m = Network.metrics net in
  {
    value = (match !root_value with Some v -> v | None -> assert false);
    expected = Sensitive.fold spec (Array.to_list inputs);
    time = !finish_time;
    syscalls = Hardware.Metrics.syscalls m;
    hops = Hardware.Metrics.hops m;
    messages = Hardware.Metrics.sends m;
    t_opt_complete = Optimal_tree.optimal_time params ~n;
    max_route = !max_route;
  }
