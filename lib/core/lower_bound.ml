module Tree = Netgraph.Tree

(* -- The counting argument ------------------------------------------- *)

let pow2 k =
  if k < 0 || k > 61 then invalid_arg "Lower_bound.pow2: exponent out of range";
  1 lsl k

(* P_t bounds the number of predecessors (strict ancestors) of the
   adversary's uninformed set V_t: each of the 2^t members of V_t sits
   five levels below V_(t-1), contributing at most 5 fresh ancestors,
   on top of the previous P_(t-1); P_0 accounts for the source's
   ancestors (just the source itself plus slack). *)
let predecessors_bound t =
  let rec accumulate s acc = if s > t then acc else accumulate (s + 1) (acc + (5 * pow2 s)) in
  accumulate 0 2

let claim_inequality_holds ~t =
  if t < 1 then invalid_arg "Lower_bound.claim_inequality_holds: t >= 1";
  (* 2^(5t+5) >= 2^(t+1) + 2 * P_t, rearranged so the right-hand side
     (< 2^60 for every t <= 55) stays within native ints even when the
     left-hand side would overflow. *)
  let required = pow2 (t + 1) + (2 * predecessors_bound t) in
  let descendants_exp = (5 * t) + 5 in
  if descendants_exp <= 61 then pow2 descendants_exp >= required
  else true (* required < 2^60 < 2^descendants_exp *)

let verify_claim ~max_t =
  if max_t > 55 then invalid_arg "Lower_bound.verify_claim: max_t <= 55";
  let rec check t = t > max_t || (claim_inequality_holds ~t && check (t + 1)) in
  check 1

let rounds_lower_bound ~n =
  if n < 1 then invalid_arg "Lower_bound.rounds_lower_bound: n >= 1";
  let depth = int_of_float (floor (Sim.Stats.log2 (float_of_int (n + 1)))) - 1 in
  max 1 ((depth - 5) / 5)

(* -- The round-based schedule simulator ------------------------------- *)

type path_choice = { sender : int; path : int list }

type strategy =
  tree:Netgraph.Tree.t -> informed:bool array -> round:int -> path_choice list

let validate_choice tree informed { sender; path } =
  if not informed.(sender) then
    invalid_arg
      (Printf.sprintf "Lower_bound.simulate: uninformed sender %d" sender);
  (match path with
  | first :: _ when first = sender -> ()
  | _ -> invalid_arg "Lower_bound.simulate: path must start at its sender");
  let rec downward = function
    | [] | [ _ ] -> ()
    | u :: (v :: _ as rest) ->
        if not (List.mem v (Tree.children tree u)) then
          invalid_arg
            (Printf.sprintf
               "Lower_bound.simulate: %d -> %d is not a child link" u v);
        downward rest
  in
  downward path

let first_links choices =
  List.filter_map
    (fun { path; _ } ->
      match path with u :: v :: _ -> Some (u, v) | _ -> None)
    choices

let simulate ~tree ~strategy ~max_rounds =
  let top =
    1 + List.fold_left max (Tree.root tree) (Tree.nodes tree)
  in
  let informed = Array.make top false in
  informed.(Tree.root tree) <- true;
  let covered () =
    List.for_all (fun v -> informed.(v)) (Tree.nodes tree)
  in
  let rec advance round =
    if covered () then Some (round - 1)
    else if round > max_rounds then None
    else begin
      let choices = strategy ~tree ~informed ~round in
      List.iter (validate_choice tree informed) choices;
      let links = first_links choices in
      let sorted = List.sort compare links in
      let rec no_duplicates = function
        | a :: (b :: _ as rest) ->
            if a = b then
              invalid_arg
                "Lower_bound.simulate: two paths through one child link"
            else no_duplicates rest
        | _ -> ()
      in
      no_duplicates sorted;
      List.iter
        (fun { path; _ } -> List.iter (fun v -> informed.(v) <- true) path)
        choices;
      advance (round + 1)
    end
  in
  advance 1

(* -- Concrete strategies ---------------------------------------------- *)

(* Send every decomposition path whose head became informed in the
   previous round (the head launches all its paths at once; they go
   through distinct child links by construction). *)
let branching_paths_strategy ~tree ~informed ~round =
  ignore round;
  let labelling = Labels.compute tree in
  let launched_some = ref [] in
  List.iter
    (fun head ->
      if informed.(head) then
        List.iter
          (fun path ->
            match path with
            | _ :: second :: _ when not informed.(second) ->
                launched_some := { sender = head; path } :: !launched_some
            | _ -> ())
          (Labels.paths_from labelling head))
    (Tree.nodes tree);
  !launched_some

(* Through each child link of each informed node, extend greedily into
   the deepest chain of uninformed nodes. *)
let greedy_strategy ~tree ~informed ~round =
  ignore round;
  let rec deepest v =
    let options = List.map deepest (Tree.children tree v) in
    let best = List.fold_left (fun acc p -> if List.length p > List.length acc then p else acc) [] options in
    v :: best
  in
  let choices = ref [] in
  List.iter
    (fun u ->
      if informed.(u) then
        List.iter
          (fun c ->
            if not informed.(c) then
              choices := { sender = u; path = u :: deepest c } :: !choices)
          (Tree.children tree u))
    (Tree.nodes tree);
  !choices

let eager_single_edge_strategy ~tree ~informed ~round =
  ignore round;
  let choices = ref [] in
  List.iter
    (fun u ->
      if informed.(u) then
        List.iter
          (fun c ->
            if not informed.(c) then
              choices := { sender = u; path = [ u; c ] } :: !choices)
          (Tree.children tree u))
    (Tree.nodes tree);
  !choices
