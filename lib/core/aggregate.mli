(** Globally sensitive functions on {e general} graphs.

    Section 5 develops the optimal computation theory on a complete
    graph; Section 6 asks which other algorithms the new model
    improves.  This module works out the direct consequence: with full
    topology knowledge, ANR lets any node reach any other in one
    system call, so a general connected graph behaves like a complete
    graph whose "links" are multi-hop source routes.  In the limiting
    model (C = 0) the underlying topology vanishes entirely — folding
    n inputs costs exactly the complete-graph optimum regardless of
    the graph; with C > 0 each tree edge pays C per physical hop of
    its embedded route, so sparse or high-diameter graphs fall behind
    the complete-graph bound by a factor the experiment measures.

    The computation tree is the Section 5 optimal tree, embedded by
    matching its breadth-first order with the graph's breadth-first
    order from the chosen root (a heuristic that keeps routes short on
    the families we sweep; optimal embedding is NP-hard in general). *)

type result = {
  value : int;
  expected : int;
  time : float;
  syscalls : int;
  hops : int;  (** total physical hops — the embedding overhead *)
  messages : int;
  t_opt_complete : float;
      (** the complete-graph optimum for the same (C, P, n): a lower
          bound, achieved exactly when C = 0 or the graph is complete *)
  max_route : int;  (** longest embedded route, in hops *)
}

val run :
  ?inputs:int array ->
  ?root:int ->
  c:float ->
  p:float ->
  graph:Netgraph.Graph.t ->
  spec:int Sensitive.spec ->
  unit ->
  result
(** Fold the inputs over the embedded optimal tree and report both
    measures.  [root] defaults to node 0; [inputs] to a deterministic
    pattern over the spec's alphabet.
    @raise Invalid_argument if the graph is disconnected, the root is
    out of range, or the inputs are invalid. *)
