module Network = Hardware.Network

type msg = { origin : int }

let forward ctx ~except m =
  let self = Network.self ctx in
  List.iter
    (fun (peer, up) ->
      if up && Some peer <> except then
        Network.send_walk ~label:"flood" ctx ~walk:[ self; peer ] m)
    (Network.neighbors ctx)

let spec ~reached ~view:_ v =
  let seen = ref false in
  {
    Network.on_start =
      (fun ctx -> forward ctx ~except:None { origin = Network.self ctx });
    on_message =
      (fun ctx ~via m ->
        reached.(v) <- true;
        if not !seen then begin
          seen := true;
          forward ctx ~except:via m
        end);
    on_link_change = (fun _ ~peer:_ ~up:_ -> ());
  }

let run ?(config = Broadcast.default_config ()) ~graph ~root () =
  Broadcast.execute ~config ~graph ~root ~spec ()
