module Network = Hardware.Network

type msg = { origin : int }

let forward ctx ~except m =
  let self = Network.self ctx in
  let net = Network.network ctx in
  let forwarded = ref 0 in
  (* allocation-free scan of the up links; same increasing-peer order
     as the old [Network.neighbors] list *)
  Network.iter_active_neighbors net self (fun peer ->
      if Some peer <> except then begin
        incr forwarded;
        Network.send_walk ~label:"flood" ctx ~walk:[ self; peer ] m
      end);
  if !forwarded > 0 then
    match Network.registry (Network.network ctx) with
    | Some r when Hardware.Registry.enabled r ->
        Hardware.Registry.add
          (Hardware.Registry.counter r "flood.forwards") !forwarded
    | _ -> ()

let spec ~reached ~view:_ v =
  let seen = ref false in
  {
    Network.on_start =
      (fun ctx -> forward ctx ~except:None { origin = Network.self ctx });
    on_message =
      (fun ctx ~via m ->
        reached.(v) <- true;
        if not !seen then begin
          seen := true;
          forward ctx ~except:via m
        end);
    on_link_change = (fun _ ~peer:_ ~up:_ -> ());
  }

let run ?(config = Broadcast.default_config ()) ~graph ~root () =
  Broadcast.execute ~config ~graph ~root ~spec ()
