module Network = Hardware.Network
module Graph = Netgraph.Graph

type msg =
  | Data of { origin : int; attempt : int }
  | Ack of { src : int }

let forward ctx ~except m =
  let self = Network.self ctx in
  let net = Network.network ctx in
  let forwarded = ref 0 in
  (* allocation-free scan of the up links; same increasing-peer order
     as the old [Network.neighbors] list *)
  Network.iter_active_neighbors net self (fun peer ->
      if Some peer <> except then begin
        incr forwarded;
        Network.send_walk ~label:"flood" ctx ~walk:[ self; peer ] m
      end);
  if !forwarded > 0 then
    match Network.registry (Network.network ctx) with
    | Some r when Hardware.Registry.enabled r ->
        Hardware.Registry.add
          (Hardware.Registry.counter r "flood.forwards") !forwarded
    | _ -> ()

(* [ack_tree] (recovery only) is a BFS tree of the root's view: the
   fixed routes acks climb to reach the root. *)
let spec ?recovery ?ack_tree ~reached ~view:_ v =
  let seen_attempt = ref (-1) in
  {
    Network.on_start =
      (fun ctx ->
        let send attempt =
          forward ctx ~except:None (Data { origin = Network.self ctx; attempt })
        in
        send 0;
        match recovery with
        | None -> ()
        | Some st ->
            Broadcast.Recovery.start st ctx
              ~resend:(fun ~attempt -> send attempt));
    on_message =
      (fun ctx ~via m ->
        match m with
        | Data d ->
            reached.(v) <- true;
            if d.attempt > !seen_attempt then begin
              seen_attempt := d.attempt;
              forward ctx ~except:via m;
              match (recovery, ack_tree) with
              | Some _, Some tree -> (
                  match Broadcast.Recovery.ack_walk tree v with
                  | Some walk ->
                      Network.send_walk ~label:"flood-ack" ctx ~walk
                        (Ack { src = v })
                  | None -> ())
              | _ -> ()
            end
        | Ack { src } -> (
            match recovery with
            | Some st -> Broadcast.Recovery.ack st ~src
            | None -> ()));
    on_link_change = (fun _ ~peer:_ ~up:_ -> ());
  }

let run ?(config = Broadcast.default_config ()) ~graph ~root () =
  let recovery = Broadcast.Recovery.create config ~n:(Graph.n graph) ~root in
  let ack_tree =
    match recovery with
    | None -> None
    | Some _ ->
        let view = Option.value ~default:graph config.Broadcast.view in
        Some (Netgraph.Spanning.bfs_tree view ~root)
  in
  Broadcast.execute ~config ~graph ~root ~spec:(spec ?recovery ?ack_tree) ()
