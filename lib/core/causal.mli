(** Causal-message analysis of executions (the paper's appendix).

    A message is {e causal} if it is received by the root before the
    algorithm terminates, or received by some node before that node
    sends a causal message — i.e. it can influence the output through
    Lamport's happened-before relation.  Theorem 6 rests on two facts
    checked here on concrete traces:

    - in an execution computing a globally sensitive function, every
      node other than the root sends at least one causal message
      (Lemma A.2);
    - the {e last} causal message of each node defines a spanning tree
      rooted at the output node (Lemma A.3), which is exactly the tree
      a tree-based algorithm would use. *)

type message = {
  id : int;
  src : int;
  send_time : float;
  dst : int;
  recv_time : float;
}

val messages_of_trace : Sim.Trace.t -> message list
(** Pair the [Send] and [Receive] events of a trace; a packet copied
    to several NCUs yields one entry per delivery. *)

val causal_messages :
  message list -> root:int -> t_end:float -> message list
(** The causal subset with respect to the root's termination at
    [t_end]. *)

val last_causal_tree :
  message list -> root:int -> t_end:float -> n:int -> Netgraph.Tree.t option
(** The tree of Lemma A.3: each node's parent is the destination of
    its last causal send.  [None] when some non-root node in
    [0..n-1] sent no causal message (the function then cannot have
    been globally sensitive on this input) or the edges do not form a
    tree. *)
