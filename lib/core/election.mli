(** The leader-election algorithm of Section 4.

    Every node starts as a candidate owning the domain [{itself}].
    An active candidate tours: it travels (by direct messages) to a
    node [o] outside its domain, then climbs the virtual-tree parent
    pointers toward that domain's origin — but never more than
    [phase + 1] direct messages, where [phase = floor(log2 size)].
    Reaching a lower-level origin captures that whole domain (merging
    the INOUT trees keeps every needed route linear); meeting a
    higher-level candidate, or running out of hops, makes the tourer
    permanently inactive.  Waiting at a busy origin follows rules
    (2.3)/(2.4).  The unique survivor — whose OUT set empties —
    declares itself leader.

    Theorem 5: at most [6n] direct messages (system calls) in total;
    time is O(n).  The election itself is measured separately from
    the final leader announcement (an extra O(n)-system-call tour
    over the leader's INOUT tree, needed so that every node reaches
    the [leader.elected] state required by the problem statement). *)

type outcome = {
  leader : int;
  believed_leader : int option array;
      (** what each node believes after the announcement *)
  election_syscalls : int;
      (** deliveries of tour and return messages — the quantity
          Theorem 5 bounds by 6n *)
  start_syscalls : int;  (** the n initial activations *)
  announce_syscalls : int;
  total_syscalls : int;
  hops : int;
  time : float;
  tours : int;  (** tours undertaken across all candidates *)
  captures : int;
  max_route : int;  (** longest direct-message route used, in hops *)
  notify_syscalls : int;
      (** deliveries of supporter notifications; 0 unless
          [notify_supporters] *)
  spanning_tree : Netgraph.Tree.t;
      (** the leader's final INOUT tree — a spanning tree of the
          network rooted at the leader, a useful by-product: it can
          carry the Section 3 broadcasts of the reorganised network *)
}

val run :
  ?cost:Hardware.Cost_model.t ->
  ?starters:int list ->
  ?rng:Sim.Rng.t ->
  ?notify_supporters:bool ->
  ?recover:Hardware.Recover.t ->
  ?trace:Sim.Trace.t ->
  ?registry:Hardware.Registry.t ->
  graph:Netgraph.Graph.t ->
  unit ->
  outcome
(** Run one election to quiescence.  [starters] (default: every node)
    are triggered at time 0; any other node joins when first touched
    by the algorithm, as in the paper.  When [rng] is given, each
    candidate picks tour targets uniformly from its OUT set instead of
    taking the smallest id, and the cost model's delays are whatever
    [cost] samples — useful for property tests across schedules.

    [notify_supporters] turns on the naive variant the paper rejects
    in Section 4: after every capture the winner sends a direct
    message to each member of the captured domain with the new route.
    The extra deliveries (reported in [notify_syscalls]) grow as
    Θ(n log n), demonstrating why the algorithm leaves supporters
    un-notified.

    [trace] records the hardware events of the run for export;
    [registry] additionally receives the [net.*] instruments plus
    [election.tours], [election.captures] and the [election.route_len]
    histogram.

    @raise Invalid_argument if the graph is disconnected or
    [starters] is empty. *)

(** {1 Election under injected faults} *)

type chaos_outcome = {
  leaders : int list;
      (** nodes that declared themselves leader, ascending; [[]] when
          faults starved every candidate (a touring candidate whose
          token was lost waits forever), at most one element when the
          paper's safety argument holds *)
  believed : int option array;
      (** announcement state per node; a partitioned or crashed node
          may legitimately still believe [None] or a stale leader *)
  election_deliveries : int;
      (** tour/return deliveries — the 6n budget of Theorem 5 is a
          valid bound a fortiori, faults only remove deliveries *)
  chaos_syscalls : int;  (** all NCU activations incl. link-change *)
  chaos_hops : int;
  chaos_drops : int;
  chaos_time : float;
}

val run_chaos :
  ?cost:Hardware.Cost_model.t ->
  ?starters:int list ->
  ?rng:Sim.Rng.t ->
  ?recover:Hardware.Recover.t ->
  ?trace:Sim.Trace.t ->
  ?registry:Hardware.Registry.t ->
  ?chaos:Hardware.Fault_plan.t ->
  graph:Netgraph.Graph.t ->
  unit ->
  chaos_outcome
(** Like {!run} but with a fault plan armed before the starters fire,
    and an outcome that tolerates fault-induced liveness loss: instead
    of raising when no (or, would it ever happen, more than one)
    leader emerges, it reports every declared leader so the chaos
    oracles can check at-most-one-leader among survivors.  The graph
    must be connected at time 0; the plan may disconnect it later.

    [recover] turns on the epoch-restart layer (DESIGN.md §16): a
    touring origin arms a per-tour watchdog; an expiry with the tour
    still outstanding restarts the node as a fresh singleton candidate
    in the next epoch (capped exponential backoff, bounded restart
    budget).  Every message carries its epoch; stale-epoch messages
    are dropped and a newer epoch makes the receiver re-join.  With
    recovery on, [election_deliveries] is bounded by
    [6n * (1 + restarts)] rather than the fault-free [6n]. *)
