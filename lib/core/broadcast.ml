module Graph = Netgraph.Graph
module Cost_model = Hardware.Cost_model
module Network = Hardware.Network
module Metrics = Hardware.Metrics

type result = {
  time : float;
  syscalls : int;
  hops : int;
  sends : int;
  drops : int;
  max_header : int;
  reached : bool array;
}

let coverage r = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 r.reached
let all_reached r = Array.for_all Fun.id r.reached

type config = {
  cost : Cost_model.t;
  failed : (int * int) list;
  dmax : int option;
  view : Graph.t option;
  trace : Sim.Trace.t option;
  registry : Hardware.Registry.t option;
  chaos : Hardware.Fault_plan.t option;
  recover : Hardware.Recover.t option;
}

let default_config () =
  {
    cost = Cost_model.new_model ();
    failed = [];
    dmax = None;
    view = None;
    trace = None;
    registry = None;
    chaos = None;
    recover = None;
  }

(* Root-side ack/retransmit state shared by the recovering broadcast
   algorithms (DESIGN.md §16).  Receivers acknowledge each accepted
   attempt back to the root; the root's watchdog retransmits the whole
   broadcast — attempt-tagged, so relays forward once per attempt and
   acceptance stays at-most-once — under capped exponential backoff
   until every node acked or the retry budget is spent.  Everything is
   ordinary engine events and the backoff jitter comes from the root's
   own split stream, so traces stay byte-identical at any [--jobs]. *)
module Recovery = struct
  module Registry = Hardware.Registry
  module Recover = Hardware.Recover

  type t = {
    rc : Recover.t;
    obs : Recover.obs option;
    acked : bool array;
    mutable acks : int;
    mutable attempt : int;
    mutable dog : Sim.Timer.t option;
    rng : Sim.Rng.t;  (* the root's jitter stream *)
  }

  let create config ~n ~root =
    match config.recover with
    | None -> None
    | Some rc ->
        let acked = Array.make n false in
        acked.(root) <- true;
        Some
          {
            rc;
            obs = Recover.obs config.registry;
            acked;
            acks = 1;
            attempt = 0;
            dog = None;
            rng = (Recover.streams rc ~n).(root);
          }

  let complete st = st.acks >= Array.length st.acked

  (* Root side: record one ack, at most once per source; the watchdog
     is cancelled the instant the last ack lands, so a fault-free
     recovering run costs exactly the acks — no expiry ever fires. *)
  let ack st ~src =
    if src >= 0 && src < Array.length st.acked && not st.acked.(src) then begin
      st.acked.(src) <- true;
      st.acks <- st.acks + 1;
      (match st.obs with Some o -> Registry.incr o.Recover.r_acks | None -> ());
      if complete st then
        match st.dog with Some d -> Sim.Timer.cancel d | None -> ()
    end

  (* Root side, from on_start: arm the watchdog loop.  Expiry [k]
     (0-based) retransmits as attempt [k+1] and re-arms with the next
     backoff delay until the budget is spent. *)
  let start st ctx ~resend =
    let dog = Network.watchdog ctx in
    st.dog <- Some dog;
    let rec arm () =
      let delay = Recover.delay st.rc ~rng:st.rng ~attempt:st.attempt in
      (match st.obs with
      | Some o -> Registry.observe o.Recover.r_backoff delay
      | None -> ());
      Network.arm_watchdog ~label:"bcast-watchdog" ctx dog ~delay (fun () ->
          if not (complete st) then begin
            (match st.obs with
            | Some o -> Registry.incr o.Recover.r_timeouts
            | None -> ());
            if st.attempt >= st.rc.Recover.max_retries then (
              match st.obs with
              | Some o -> Registry.incr o.Recover.r_give_ups
              | None -> ())
            else begin
              st.attempt <- st.attempt + 1;
              (match st.obs with
              | Some o -> Registry.incr o.Recover.r_retransmits
              | None -> ());
              resend ~attempt:st.attempt;
              arm ()
            end
          end)
    in
    arm ()

  (* The ack route: up the broadcast tree from [v] to its root — a
     path of the static graph, so it is valid again once every fault
     has healed.  [None] when [v] is the root or outside the tree. *)
  let ack_walk tree v =
    if not (Netgraph.Tree.mem tree v) then None
    else
      match List.rev (Netgraph.Tree.path_from_root tree v) with
      | _ :: _ :: _ as walk -> Some walk
      | _ -> None
end

type 'msg spec =
  reached:bool array -> view:Graph.t -> int -> 'msg Network.handlers

let execute ~config ~graph ~root ~spec () =
  (* queue peak is bounded by in-flight packets, itself O(n) for every
     broadcast here; the hint saves the doubling regrowth per replica *)
  let engine = Sim.Engine.create ~queue_capacity:(Graph.n graph) () in
  (* no caller-supplied trace means nobody can observe one: run with
     recording off rather than materialising the whole run in RAM *)
  let trace =
    match config.trace with Some t -> t | None -> Sim.Trace.disabled ()
  in
  let view = Option.value ~default:graph config.view in
  let reached = Array.make (Graph.n graph) false in
  let net =
    Network.create ~trace ?registry:config.registry ?dmax:config.dmax ~engine
      ~cost:config.cost ~graph ~handlers:(spec ~reached ~view) ()
  in
  List.iter (fun (u, v) -> Network.preset_link net u v ~up:false) config.failed;
  (match config.chaos with
  | Some plan -> Hardware.Fault_plan.arm net plan
  | None -> ());
  reached.(root) <- true;
  Network.start ~label:"broadcast-start" net root;
  (match Sim.Engine.run engine with
  | Sim.Engine.Quiescent -> ()
  | Sim.Engine.Time_limit | Sim.Engine.Event_limit ->
      (* unreachable: no horizon/budget given *)
      assert false);
  Network.publish_distributions net;
  let m = Network.metrics net in
  (* completion = the last NCU activation finishing; taken from the
     network's busy-until marks so it holds with tracing off or
     streaming (a trace fold would see an empty ring) *)
  let time = Network.last_activation_time net in
  {
    time;
    syscalls = Metrics.syscalls m;
    hops = Metrics.hops m;
    sends = Metrics.sends m;
    drops = Metrics.drops m;
    max_header = Metrics.max_header m;
    reached;
  }
