module Graph = Netgraph.Graph
module Cost_model = Hardware.Cost_model
module Network = Hardware.Network
module Metrics = Hardware.Metrics

type result = {
  time : float;
  syscalls : int;
  hops : int;
  sends : int;
  drops : int;
  max_header : int;
  reached : bool array;
}

let coverage r = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 r.reached
let all_reached r = Array.for_all Fun.id r.reached

type config = {
  cost : Cost_model.t;
  failed : (int * int) list;
  dmax : int option;
  view : Graph.t option;
  trace : Sim.Trace.t option;
  registry : Hardware.Registry.t option;
  chaos : Hardware.Fault_plan.t option;
}

let default_config () =
  {
    cost = Cost_model.new_model ();
    failed = [];
    dmax = None;
    view = None;
    trace = None;
    registry = None;
    chaos = None;
  }

type 'msg spec =
  reached:bool array -> view:Graph.t -> int -> 'msg Network.handlers

let execute ~config ~graph ~root ~spec () =
  (* queue peak is bounded by in-flight packets, itself O(n) for every
     broadcast here; the hint saves the doubling regrowth per replica *)
  let engine = Sim.Engine.create ~queue_capacity:(Graph.n graph) () in
  (* no caller-supplied trace means nobody can observe one: run with
     recording off rather than materialising the whole run in RAM *)
  let trace =
    match config.trace with Some t -> t | None -> Sim.Trace.disabled ()
  in
  let view = Option.value ~default:graph config.view in
  let reached = Array.make (Graph.n graph) false in
  let net =
    Network.create ~trace ?registry:config.registry ?dmax:config.dmax ~engine
      ~cost:config.cost ~graph ~handlers:(spec ~reached ~view) ()
  in
  List.iter (fun (u, v) -> Network.preset_link net u v ~up:false) config.failed;
  (match config.chaos with
  | Some plan -> Hardware.Fault_plan.arm net plan
  | None -> ());
  reached.(root) <- true;
  Network.start ~label:"broadcast-start" net root;
  (match Sim.Engine.run engine with
  | Sim.Engine.Quiescent -> ()
  | Sim.Engine.Time_limit | Sim.Engine.Event_limit ->
      (* unreachable: no horizon/budget given *)
      assert false);
  Network.publish_distributions net;
  let m = Network.metrics net in
  (* completion = the last NCU activation finishing; taken from the
     network's busy-until marks so it holds with tracing off or
     streaming (a trace fold would see an empty ring) *)
  let time = Network.last_activation_time net in
  {
    time;
    syscalls = Metrics.syscalls m;
    hops = Metrics.hops m;
    sends = Metrics.sends m;
    drops = Metrics.drops m;
    max_header = Metrics.max_header m;
    reached;
  }
