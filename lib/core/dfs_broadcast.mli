(** Single-token depth-first broadcast (Section 3.1).

    One packet traverses the spanning tree in depth-first order and is
    copied once by every node: n system calls and one time unit — but
    the token dies at the first inactive link it meets, losing every
    node after it in tour order.  The six-node example of Section 3
    shows the resulting topology-maintenance deadlock; this module is
    the baseline that exhibits it. *)

type msg = { origin : int }

val tour_for : view:Netgraph.Graph.t -> root:int -> int list
(** The walk the token follows: the depth-first tour of the BFS tree
    of the view, truncated after the last first-visit. *)

val run :
  ?config:Broadcast.config ->
  graph:Netgraph.Graph.t ->
  root:int ->
  unit ->
  Broadcast.result
