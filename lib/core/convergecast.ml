module Tree = Netgraph.Tree
module Network = Hardware.Network

type result = {
  value : int;
  expected : int;
  time : float;
  predicted : float;
  syscalls : int;
  hops : int;
  messages : int;
}

type msg = Partial of int

let default_inputs spec n =
  let alphabet = Array.of_list spec.Sensitive.alphabet in
  Array.init n (fun i -> alphabet.(i mod Array.length alphabet))

let execute ?inputs ?random_delays ~params ~shape ~spec () =
  let n = Optimal_tree.size shape in
  let tree = Optimal_tree.to_netgraph_tree shape in
  let inputs =
    match inputs with
    | None -> default_inputs spec n
    | Some a ->
        if Array.length a <> n then
          invalid_arg "Convergecast.run: inputs length mismatch";
        Array.iter
          (fun x ->
            if not (List.mem x spec.Sensitive.alphabet) then
              invalid_arg "Convergecast.run: input outside the alphabet")
          a;
        a
  in
  let { Optimal_tree.c; p } = params in
  let cost =
    match random_delays with
    | None -> Hardware.Cost_model.deterministic ~c ~p
    | Some rng -> Hardware.Cost_model.uniform_random rng ~c ~p
  in
  let graph = Netgraph.Builders.complete (max n 2) in
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let acc = Array.map (fun x -> x) inputs in
  let pending = Array.make n 0 in
  let finish_time = ref nan in
  let root_value = ref None in
  let forward ctx v =
    match Tree.parent tree v with
    | None ->
        root_value := Some acc.(v);
        finish_time := Sim.Engine.now engine
    | Some parent ->
        Network.send_walk ~label:"convergecast" ctx ~walk:[ v; parent ]
          (Partial acc.(v))
  in
  let handlers v =
    if v >= n then Network.default_handlers
    else
      {
        Network.on_start =
          (fun ctx ->
            pending.(v) <- List.length (Tree.children tree v);
            if pending.(v) = 0 then forward ctx v);
        on_message =
          (fun ctx ~via:_ (Partial x) ->
            acc.(v) <- spec.Sensitive.op acc.(v) x;
            pending.(v) <- pending.(v) - 1;
            if pending.(v) = 0 then forward ctx v);
        on_link_change = (fun _ ~peer:_ ~up:_ -> ());
      }
  in
  let net = Network.create ~trace ~engine ~cost ~graph ~handlers () in
  for v = 0 to n - 1 do
    Network.start ~label:"trigger" net v
  done;
  (match Sim.Engine.run engine with
  | Sim.Engine.Quiescent -> ()
  | _ -> assert false);
  let m = Network.metrics net in
  let value = match !root_value with Some v -> v | None -> assert false in
  let r =
    {
      value;
      expected = Sensitive.fold spec (Array.to_list inputs);
      time = !finish_time;
      predicted = Optimal_tree.predicted_completion params shape;
      syscalls = Hardware.Metrics.syscalls m;
      hops = Hardware.Metrics.hops m;
      messages = Hardware.Metrics.sends m;
    }
  in
  (r, trace, !finish_time)

let run ?inputs ?random_delays ~params ~shape ~spec () =
  let r, _, _ = execute ?inputs ?random_delays ~params ~shape ~spec () in
  r

let trace_run ~params ~shape ~spec () =
  execute ~params ~shape ~spec ()
