(** Direct-message broadcast: one source-routed packet per node.

    "For example, i may send a message directly to each node.  The
    system call and time complexities are both O(n)." (Section 3.1.)

    The free multicast primitive ships at most one packet per outgoing
    link per activation (it transmits the {e same} message over
    multiple links; distinct headers to distinct destinations over the
    same link require separate processing).  The root therefore sends
    in rounds: each activation dispatches one pending packet per
    outgoing link, and re-activates itself until all destinations are
    served — ⌈(n-1)/degree⌉·P time at the root, plus delivery. *)

type msg = { origin : int }

val rounds_needed : Netgraph.Graph.t -> root:int -> int
(** Number of root activations the round-robin dispatch needs. *)

val run :
  ?config:Broadcast.config ->
  graph:Netgraph.Graph.t ->
  root:int ->
  unit ->
  Broadcast.result
