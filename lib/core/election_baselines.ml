module Network = Hardware.Network

type outcome = {
  leader : int;
  syscalls : int;
  hops : int;
  time : float;
  phases : int;
}

(* -- Hirschberg-Sinclair on a ring ------------------------------------ *)

type hs_msg =
  | Probe of { id : int; phase : int; ttl : int; clockwise : bool }
  | Reply of { id : int; phase : int; clockwise : bool }
      (** travelling back toward the prober, in direction [clockwise] *)
  | Winner of { id : int; ttl : int }

type hs_state = {
  mutable beaten : bool;
  mutable phase : int;
  mutable pending_replies : int;
  mutable is_leader : bool;
  mutable known_leader : int option;
}

let bit_reversal_priorities ~n =
  let bits =
    let rec go b = if 1 lsl b >= n then b else go (b + 1) in
    go 0
  in
  if 1 lsl bits <> n then
    invalid_arg "bit_reversal_priorities: n must be a power of two";
  Array.init n (fun v ->
      let r = ref 0 in
      for b = 0 to bits - 1 do
        if v land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
      done;
      !r)

let run_hirschberg_sinclair ?(cost = Hardware.Cost_model.new_model ())
    ?priorities ~n () =
  if n < 3 then invalid_arg "run_hirschberg_sinclair: n >= 3";
  let prio =
    match priorities with
    | None -> Array.init n Fun.id
    | Some p ->
        if Array.length p <> n then
          invalid_arg "run_hirschberg_sinclair: priorities length mismatch";
        let seen = Array.make n false in
        Array.iter
          (fun x ->
            if x < 0 || x >= n || seen.(x) then
              invalid_arg "run_hirschberg_sinclair: not a permutation";
            seen.(x) <- true)
          p;
        Array.copy p
  in
  let graph = Netgraph.Builders.ring n in
  let engine = Sim.Engine.create () in
  let states =
    Array.init n (fun _ ->
        {
          beaten = false;
          phase = 0;
          pending_replies = 0;
          is_leader = false;
          known_leader = None;
        })
  in
  let max_phase = ref 0 in
  let next v = (v + 1) mod n and prev v = (v + n - 1) mod n in
  let send ctx ~to_ m =
    Network.send_walk ~label:"hs" ctx ~walk:[ Network.self ctx; to_ ] m
  in
  let launch_probes ctx v st =
    st.pending_replies <- 2;
    let ttl = 1 lsl st.phase in
    if st.phase > !max_phase then max_phase := st.phase;
    send ctx ~to_:(next v) (Probe { id = v; phase = st.phase; ttl; clockwise = true });
    send ctx ~to_:(prev v) (Probe { id = v; phase = st.phase; ttl; clockwise = false })
  in
  let handlers v =
    {
      Network.on_start =
        (fun ctx ->
          let st = states.(v) in
          launch_probes ctx v st);
      on_message =
        (fun ctx ~via:_ m ->
          let st = states.(v) in
          match m with
          | Probe { id; phase; ttl; clockwise } ->
              if id = v then begin
                (* the probe circled the ring: v wins *)
                if not st.is_leader then begin
                  st.is_leader <- true;
                  st.known_leader <- Some v;
                  send ctx ~to_:(next v) (Winner { id = v; ttl = n - 1 })
                end
              end
              else if prio.(id) > prio.(v) then begin
                st.beaten <- true;
                if ttl > 1 then
                  send ctx
                    ~to_:(if clockwise then next v else prev v)
                    (Probe { id; phase; ttl = ttl - 1; clockwise })
                else
                  (* turn around: travel back opposite to the probe *)
                  send ctx
                    ~to_:(if clockwise then prev v else next v)
                    (Reply { id; phase; clockwise = not clockwise })
              end
              (* id < v: swallow the probe *)
          | Reply { id; phase; clockwise } ->
              if id = v then begin
                if phase = st.phase && not st.beaten then begin
                  st.pending_replies <- st.pending_replies - 1;
                  if st.pending_replies = 0 then begin
                    st.phase <- st.phase + 1;
                    launch_probes ctx v st
                  end
                end
              end
              else
                send ctx
                  ~to_:(if clockwise then next v else prev v)
                  (Reply { id; phase; clockwise })
          | Winner { id; ttl } ->
              st.known_leader <- Some id;
              if ttl > 1 then
                send ctx ~to_:(next v) (Winner { id; ttl = ttl - 1 }));
      on_link_change = (fun _ ~peer:_ ~up:_ -> ());
    }
  in
  let net = Network.create ~engine ~cost ~graph ~handlers () in
  Network.start_all net;
  (match Sim.Engine.run engine with
  | Sim.Engine.Quiescent -> ()
  | _ -> assert false);
  let leader =
    match
      Array.to_list (Array.mapi (fun v st -> (v, st.is_leader)) states)
      |> List.filter (fun (_, l) -> l)
    with
    | [ (v, _) ] -> v
    | _ -> invalid_arg "run_hirschberg_sinclair: leader count is not one"
  in
  Array.iter
    (fun st -> assert (st.known_leader = Some leader))
    states;
  let m = Network.metrics net in
  {
    leader;
    syscalls = Hardware.Metrics.syscalls_labelled m "hs";
    hops = Hardware.Metrics.hops m;
    time = Sim.Engine.now engine;
    phases = !max_phase;
  }

(* -- The paper's algorithm with eager supporter notification ---------- *)

let run_notify_supporters ?cost ?rng ~graph () =
  let o = Election.run ?cost ?rng ~notify_supporters:true ~graph () in
  {
    leader = o.Election.leader;
    syscalls = o.election_syscalls + o.notify_syscalls;
    hops = o.hops;
    time = o.time;
    phases = o.captures;
  }
