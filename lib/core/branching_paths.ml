module Graph = Netgraph.Graph
module Tree = Netgraph.Tree
module Network = Hardware.Network

type msg = { origin : int; tree_edges : (int * int) list }

let tree_for ~view ~root = Netgraph.Spanning.bfs_tree view ~root

let predicted_time_units tree = Labels.max_path_depth (Labels.compute tree)

let tree_of_msg m =
  Tree.of_parents ~root:m.origin ~parents:m.tree_edges

(* Registry lookups happen only on protocol events (one per relaying
   node), never on the per-hop path, so by-name registration here is
   within the fast-path budget. *)
let publish_paths ctx k =
  if k > 0 then
    match Network.registry (Network.network ctx) with
    | Some r when Hardware.Registry.enabled r ->
        Hardware.Registry.add
          (Hardware.Registry.counter r "bpaths.paths_sent") k
    | _ -> ()

let send_paths ~multicast ctx labelling m =
  let self = Network.self ctx in
  let send path =
    Network.send_walk ~label:"bpaths" ~copy_at:(fun _ -> true) ctx ~walk:path m
  in
  let paths = Labels.paths_from labelling self in
  publish_paths ctx (List.length paths);
  match paths with
  | [] -> ()
  | paths when multicast ->
      (* one activation ships every path: they leave through distinct
         child links, which the PARIS primitive covers *)
      List.iter send paths
  | first :: rest ->
      (* ablation: no multicast primitive - each further path needs its
         own software activation *)
      send first;
      let rec drain = function
        | [] -> ()
        | path :: more ->
            Network.set_timer ~label:"bpaths-extra" ctx ~delay:0.0 (fun () ->
                send path;
                drain more)
      in
      drain rest

let spec ~multicast ~reached ~view v =
  let relayed = ref false in
  {
    Network.on_start =
      (fun ctx ->
        let root = Network.self ctx in
        let tree = tree_for ~view ~root in
        let labelling = Labels.compute tree in
        let m =
          {
            origin = root;
            tree_edges =
              List.map (fun (p, c) -> (c, p)) (Tree.edges tree);
          }
        in
        send_paths ~multicast ctx labelling m);
    on_message =
      (fun ctx ~via:_ m ->
        reached.(v) <- true;
        if not !relayed then begin
          relayed := true;
          let labelling = Labels.compute (tree_of_msg m) in
          send_paths ~multicast ctx labelling m
        end);
    on_link_change = (fun _ ~peer:_ ~up:_ -> ());
  }

let run ?(config = Broadcast.default_config ()) ?(multicast = true) ~graph
    ~root () =
  Broadcast.execute ~config ~graph ~root ~spec:(spec ~multicast) ()
