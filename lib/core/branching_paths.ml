module Graph = Netgraph.Graph
module Tree = Netgraph.Tree
module Network = Hardware.Network

type msg =
  | Data of { origin : int; labelling : Labels.t; attempt : int }
      (** the broadcast payload; [attempt] > 0 marks a retransmission
          (relays forward once per attempt, acceptance is idempotent) *)
  | Ack of { src : int }  (** delivery acknowledgement back to the origin *)

let tree_for ~view ~root = Netgraph.Spanning.bfs_tree view ~root

let predicted_time_units tree = Labels.max_path_depth (Labels.compute tree)

(* Registry lookups happen only on protocol events (one per relaying
   node), never on the per-hop path, so by-name registration here is
   within the fast-path budget. *)
let publish_paths ctx k =
  if k > 0 then
    match Network.registry (Network.network ctx) with
    | Some r when Hardware.Registry.enabled r ->
        Hardware.Registry.add
          (Hardware.Registry.counter r "bpaths.paths_sent") k
    | _ -> ()

(* The sends leaving one head: over pre-compiled routes when a route
   table is supplied, else walk-built headers — the compiled route of a
   path is exactly the header [send_walk] would build, so both arms
   produce the same packets. *)
let sends_for ctx ~routes labelling m =
  let self = Network.self ctx in
  match routes with
  | Some table ->
      Array.to_list
        (Array.map
           (fun route () -> Network.send_compiled ~label:"bpaths" ctx ~route m)
           table.(self))
  | None ->
      List.map
        (fun path () ->
          Network.send_walk ~label:"bpaths" ~copy_at:(fun _ -> true) ctx
            ~walk:path m)
        (Labels.paths_from labelling self)

let send_paths ~multicast ctx sends =
  publish_paths ctx (List.length sends);
  match sends with
  | [] -> ()
  | sends when multicast ->
      (* one activation ships every path: they leave through distinct
         child links, which the PARIS primitive covers *)
      List.iter (fun s -> s ()) sends
  | first :: rest ->
      (* ablation: no multicast primitive - each further path needs its
         own software activation *)
      first ();
      let rec drain = function
        | [] -> ()
        | s :: more ->
            Network.set_timer ~label:"bpaths-extra" ctx ~delay:0.0 (fun () ->
                s ();
                drain more)
      in
      drain rest

let spec ?precomputed ?routes ?recovery ~multicast ~reached ~view v =
  let relayed_attempt = ref (-1) in
  {
    Network.on_start =
      (fun ctx ->
        let root = Network.self ctx in
        let labelling =
          match precomputed with
          | Some l -> l
          | None -> Labels.compute (tree_for ~view ~root)
        in
        let send attempt =
          let m = Data { origin = root; labelling; attempt } in
          send_paths ~multicast ctx (sends_for ctx ~routes labelling m)
        in
        send 0;
        match recovery with
        | None -> ()
        | Some st ->
            Broadcast.Recovery.start st ctx
              ~resend:(fun ~attempt -> send attempt));
    on_message =
      (fun ctx ~via:_ m ->
        match m with
        | Data d ->
            reached.(v) <- true;
            if d.attempt > !relayed_attempt then begin
              relayed_attempt := d.attempt;
              (* the message shares the root's labelling: every relay
                 would recompute the identical decomposition from the
                 same tree description, so the paper's "tree description
                 in the message" is carried as the decomposition itself *)
              send_paths ~multicast ctx (sends_for ctx ~routes d.labelling m);
              match recovery with
              | None -> ()
              | Some _ -> (
                  (* acknowledge this attempt up the broadcast tree; a
                     lost ack is healed by the next retransmission
                     re-triggering it *)
                  match
                    Broadcast.Recovery.ack_walk (Labels.tree d.labelling) v
                  with
                  | Some walk ->
                      Network.send_walk ~label:"bpaths-ack" ctx ~walk
                        (Ack { src = v })
                  | None -> ())
            end
        | Ack { src } -> (
            match recovery with
            | Some st -> Broadcast.Recovery.ack st ~src
            | None -> ()));
    on_link_change = (fun _ ~peer:_ ~up:_ -> ());
  }

let run ?(config = Broadcast.default_config ()) ?(multicast = true) ?precomputed
    ?routes ~graph ~root () =
  (* a fault plan mutates topology mid-run: conservatively drop any
     pre-compiled route table and rebuild headers from walks at send
     time, so chaos never replays routes across the mutation *)
  let routes = if config.Broadcast.chaos <> None then None else routes in
  let recovery = Broadcast.Recovery.create config ~n:(Graph.n graph) ~root in
  Broadcast.execute ~config ~graph ~root
    ~spec:(spec ?precomputed ?routes ?recovery ~multicast)
    ()
