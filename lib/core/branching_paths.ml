module Graph = Netgraph.Graph
module Tree = Netgraph.Tree
module Network = Hardware.Network

type msg = { origin : int; labelling : Labels.t }

let tree_for ~view ~root = Netgraph.Spanning.bfs_tree view ~root

let predicted_time_units tree = Labels.max_path_depth (Labels.compute tree)

(* Registry lookups happen only on protocol events (one per relaying
   node), never on the per-hop path, so by-name registration here is
   within the fast-path budget. *)
let publish_paths ctx k =
  if k > 0 then
    match Network.registry (Network.network ctx) with
    | Some r when Hardware.Registry.enabled r ->
        Hardware.Registry.add
          (Hardware.Registry.counter r "bpaths.paths_sent") k
    | _ -> ()

(* The sends leaving one head: over pre-compiled routes when a route
   table is supplied, else walk-built headers — the compiled route of a
   path is exactly the header [send_walk] would build, so both arms
   produce the same packets. *)
let sends_for ctx ~routes labelling m =
  let self = Network.self ctx in
  match routes with
  | Some table ->
      Array.to_list
        (Array.map
           (fun route () -> Network.send_compiled ~label:"bpaths" ctx ~route m)
           table.(self))
  | None ->
      List.map
        (fun path () ->
          Network.send_walk ~label:"bpaths" ~copy_at:(fun _ -> true) ctx
            ~walk:path m)
        (Labels.paths_from labelling self)

let send_paths ~multicast ctx sends =
  publish_paths ctx (List.length sends);
  match sends with
  | [] -> ()
  | sends when multicast ->
      (* one activation ships every path: they leave through distinct
         child links, which the PARIS primitive covers *)
      List.iter (fun s -> s ()) sends
  | first :: rest ->
      (* ablation: no multicast primitive - each further path needs its
         own software activation *)
      first ();
      let rec drain = function
        | [] -> ()
        | s :: more ->
            Network.set_timer ~label:"bpaths-extra" ctx ~delay:0.0 (fun () ->
                s ();
                drain more)
      in
      drain rest

let spec ?precomputed ?routes ~multicast ~reached ~view v =
  let relayed = ref false in
  {
    Network.on_start =
      (fun ctx ->
        let root = Network.self ctx in
        let labelling =
          match precomputed with
          | Some l -> l
          | None -> Labels.compute (tree_for ~view ~root)
        in
        let m = { origin = root; labelling } in
        send_paths ~multicast ctx (sends_for ctx ~routes labelling m));
    on_message =
      (fun ctx ~via:_ m ->
        reached.(v) <- true;
        if not !relayed then begin
          relayed := true;
          (* the message shares the root's labelling: every relay would
             recompute the identical decomposition from the same tree
             description, so the paper's "tree description in the
             message" is carried as the decomposition itself *)
          send_paths ~multicast ctx (sends_for ctx ~routes m.labelling m)
        end);
    on_link_change = (fun _ ~peer:_ ~up:_ -> ());
  }

let run ?(config = Broadcast.default_config ()) ?(multicast = true) ?precomputed
    ?routes ~graph ~root () =
  (* a fault plan mutates topology mid-run: conservatively drop any
     pre-compiled route table and rebuild headers from walks at send
     time, so chaos never replays routes across the mutation *)
  let routes = if config.Broadcast.chaos <> None then None else routes in
  Broadcast.execute ~config ~graph ~root
    ~spec:(spec ?precomputed ?routes ~multicast)
    ()
