type params = { c : float; p : float }

exception Unbounded

type t = { size : int; children : t list }

let leaf = { size = 1; children = [] }
let graft a b = { size = a.size + b.size; children = b :: a.children }
let size t = t.size

let rec depth t =
  match t.children with
  | [] -> 0
  | kids -> 1 + List.fold_left (fun acc k -> max acc (depth k)) 0 kids

let root_degree t = List.length t.children

let nodes_per_depth t =
  let rec merge a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | x :: a', y :: b' -> (x + y) :: merge a' b'
  in
  let rec counts t = 1 :: List.fold_left (fun acc k -> merge acc (counts k)) [] t.children in
  counts t

let epsilon = 1e-9

let validate { c; p } =
  if c < 0.0 || p < 0.0 then invalid_arg "Optimal_tree: negative C or P"

(* S(t) by memoised descent on (a, b) with
   value(a, b) = t - a*P - b*(C+P); equation (3).  Sums saturate at
   [cap]: S grows exponentially in t, so exact values at large
   horizons would overflow native ints, and callers only ever compare
   against a target size. *)
let s_of ?(cap = 1 lsl 60) ({ c; p } as params) t =
  validate params;
  if cap < 1 then invalid_arg "Optimal_tree.s_of: cap >= 1";
  if p = 0.0 then
    if t < -.epsilon then 0
    else if t < (2.0 *. p) +. c -. epsilon then 1
    else raise Unbounded
  else begin
    let memo = Hashtbl.create 64 in
    let rec f a b =
      match Hashtbl.find_opt memo (a, b) with
      | Some v -> v
      | None ->
          let v = t -. (float_of_int a *. p) -. (float_of_int b *. (c +. p)) in
          let result =
            if v < p -. epsilon then 0
            else if v < (2.0 *. p) +. c -. epsilon then 1
            else begin
              let sum = f (a + 1) b + f a (b + 1) in
              if sum < 0 || sum > cap then cap else sum
            end
          in
          Hashtbl.replace memo (a, b) result;
          result
    in
    f 0 0
  end

let ot ({ c; p } as params) t =
  validate params;
  if p = 0.0 then
    if t < -.epsilon then None
    else if t < (2.0 *. p) +. c -. epsilon then Some leaf
    else raise Unbounded
  else begin
    let memo = Hashtbl.create 64 in
    let rec f a b =
      match Hashtbl.find_opt memo (a, b) with
      | Some v -> v
      | None ->
          let v = t -. (float_of_int a *. p) -. (float_of_int b *. (c +. p)) in
          let result =
            if v < p -. epsilon then None
            else if v < (2.0 *. p) +. c -. epsilon then Some leaf
            else
              match (f (a + 1) b, f a (b + 1)) with
              | Some big, Some small -> Some (graft big small)
              | _ -> assert false  (* both branches stay >= P *)
          in
          Hashtbl.replace memo (a, b) result;
          result
    in
    f 0 0
  end

(* Candidate completion times iP + jC (Section 5.2).  The optimum is
   bracketed a priori: S(t) >= 2 * S(t - (C+P)) by the recursion, so S
   reaches n within (C+P) * ceil(log2 n) + 2P + C; only grid points
   below that horizon are candidates. *)
let grid_times { c; p } ~n =
  let log2_ceil n =
    let rec go k = if 1 lsl k >= n then k else go (k + 1) in
    go 0
  in
  let t_max =
    ((c +. p) *. float_of_int (log2_ceil n)) +. (2.0 *. p) +. c +. epsilon
  in
  let i_max = int_of_float (ceil (t_max /. p)) in
  let j_max = if c = 0.0 then 0 else int_of_float (ceil (t_max /. c)) in
  let values = Hashtbl.create 256 in
  for i = 0 to i_max do
    for j = 0 to j_max do
      let t = (float_of_int i *. p) +. (float_of_int j *. c) in
      if t <= t_max then Hashtbl.replace values t ()
    done
  done;
  Hashtbl.fold (fun t () acc -> t :: acc) values [] |> List.sort Float.compare

let optimal_time ({ c = _; p } as params) ~n =
  validate params;
  if n < 1 then invalid_arg "Optimal_tree.optimal_time: n >= 1";
  if n = 1 then p
  else if p = 0.0 then raise Unbounded
  else begin
    let candidates = Array.of_list (grid_times params ~n) in
    (* S is non-decreasing in t: binary search the first candidate
       that fits n nodes. *)
    let fits t = s_of ~cap:n params t >= n in
    let rec search lo hi =
      (* invariant: fits candidates.(hi), not (fits candidates.(lo)) *)
      if hi - lo <= 1 then candidates.(hi)
      else
        let mid = (lo + hi) / 2 in
        if fits candidates.(mid) then search lo mid else search mid hi
    in
    let last = Array.length candidates - 1 in
    if not (fits candidates.(last)) then
      invalid_arg "Optimal_tree.optimal_time: grid bound too small"
    else if fits candidates.(0) then candidates.(0)
    else search 0 last
  end

(* Keep [n] nodes forming a parent-closed prefix (greedy, first
   children first); dropping nodes only removes arrivals, so the
   remaining schedule can only finish earlier. *)
let prune tree n =
  if tree.size <= n then tree
  else begin
    let rec take budget kids =
      match kids with
      | [] -> ([], budget)
      | k :: rest ->
          if budget <= 0 then ([], 0)
          else begin
            let kept = shrink k budget in
            let used = match kept with None -> 0 | Some k' -> k'.size in
            let rest', remaining = take (budget - used) rest in
            ((match kept with None -> rest' | Some k' -> k' :: rest'), remaining)
          end
    and shrink t budget =
      if budget <= 0 then None
      else begin
        let kids, _ = take (budget - 1) t.children in
        Some { size = 1 + List.fold_left (fun a k -> a + k.size) 0 kids; children = kids }
      end
    in
    match shrink tree n with Some t -> t | None -> assert false
  end

let optimal_tree params ~n =
  if n < 1 then invalid_arg "Optimal_tree.optimal_tree: n >= 1";
  if n = 1 then leaf
  else
    let t = optimal_time params ~n in
    match ot params t with
    | Some tree ->
        assert (tree.size >= n);
        prune tree n
    | None -> assert false

let binomial k =
  if k < 0 then invalid_arg "Optimal_tree.binomial: k >= 0";
  let rec build k = if k = 0 then leaf else graft (build (k - 1)) (build (k - 1)) in
  build k

let fib k =
  if k < 1 then invalid_arg "Optimal_tree.fib: k >= 1";
  let rec go a b k = if k <= 2 then b else go b (a + b) (k - 1) in
  go 1 1 k

let fibonacci k =
  if k < 1 then invalid_arg "Optimal_tree.fibonacci: k >= 1";
  let rec build k =
    if k <= 2 then leaf else graft (build (k - 1)) (build (k - 2))
  in
  build k

let star n =
  if n < 1 then invalid_arg "Optimal_tree.star: n >= 1";
  { size = n; children = List.init (n - 1) (fun _ -> leaf) }

let chain n =
  if n < 1 then invalid_arg "Optimal_tree.chain: n >= 1";
  let rec build n = if n = 1 then leaf else { size = n; children = [ build (n - 1) ] } in
  build n

(* All rooted unordered trees of size n, one per isomorphism class:
   children are chosen as a non-increasing sequence of (size, index)
   pairs over the memoised shape lists, which canonicalises the
   multiset of subtrees. *)
let enumerate_shapes n =
  if n < 1 || n > 14 then
    invalid_arg "Optimal_tree.enumerate_shapes: 1 <= n <= 14";
  let memo = Hashtbl.create 16 in
  let rec shapes n =
    match Hashtbl.find_opt memo n with
    | Some l -> l
    | None ->
        let result =
          if n = 1 then [| leaf |]
          else begin
            let collected = ref [] in
            (* choose children whose (size, index) never increases *)
            let rec pick remaining bound_size bound_idx chosen =
              if remaining = 0 then
                collected :=
                  { size = n; children = chosen } :: !collected
              else
                let max_size = min remaining bound_size in
                for size = max_size downto 1 do
                  let pool = shapes size in
                  let start =
                    if size = bound_size then min bound_idx (Array.length pool - 1)
                    else Array.length pool - 1
                  in
                  for idx = start downto 0 do
                    pick (remaining - size) size idx (pool.(idx) :: chosen)
                  done
                done
            in
            pick (n - 1) (n - 1) max_int [];
            Array.of_list !collected
          end
        in
        Hashtbl.replace memo n result;
        result
  in
  Array.to_list (shapes n)

let predicted_completion ({ c; p } as params) tree =
  validate params;
  let rec completion node =
    match node.children with
    | [] -> p
    | kids ->
        let arrivals = List.map (fun k -> completion k +. c) kids in
        let sorted = List.sort Float.compare arrivals in
        (* the node's own trigger occupies [0, P]; then one P per
           arriving message, FIFO *)
        List.fold_left (fun busy a -> Float.max busy a +. p) p sorted
  in
  completion tree

let to_netgraph_tree tree =
  let parents = ref [] in
  let next = ref 1 in
  let queue = Queue.create () in
  Queue.add (0, tree) queue;
  while not (Queue.is_empty queue) do
    let id, node = Queue.pop queue in
    List.iter
      (fun child ->
        let cid = !next in
        incr next;
        parents := (cid, id) :: !parents;
        Queue.add (cid, child) queue)
      node.children
  done;
  Netgraph.Tree.of_parents ~root:0 ~parents:!parents

let rec pp ppf t =
  if t.children = [] then Format.fprintf ppf "."
  else
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun _ () -> ()) pp)
      t.children
