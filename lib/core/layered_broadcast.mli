(** The layered BFS broadcast of Section 3's footnote.

    If headers of length O(n^2) are permitted (no path-length
    restriction), a single message can traverse the minimum-hop tree a
    layer at a time — first the subtree spanning all nodes within one
    hop, back to the origin, then the subtree within two hops, and so
    on — copied only on the first visit to each node.  Time is one
    unit and system calls n, and (unlike the plain depth-first token)
    a guarantee of convergence after O(log n) rounds can be recovered;
    the price is the huge header, which is why the paper develops the
    branching-paths scheme for the restricted-dmax model. *)

type msg = { origin : int }

val tour_for : view:Netgraph.Graph.t -> root:int -> int list
(** The concatenated layer-by-layer walk, truncated after the last
    first-visit. *)

val header_length : view:Netgraph.Graph.t -> root:int -> int
(** Length (in elements) of the header this broadcast needs — the
    Θ(n·d) growth that motivates the dmax restriction. *)

val run :
  ?config:Broadcast.config ->
  graph:Netgraph.Graph.t ->
  root:int ->
  unit ->
  Broadcast.result
