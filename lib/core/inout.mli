(** The INOUT tree of a candidate's domain (Section 4.1).

    An origin records the set [IN] of nodes in its domain and the set
    [OUT] of outside neighbours of domain nodes, organised as a tree
    that is a subgraph of the network (so that the ANR route from the
    origin to any recorded node — and between any two recorded nodes —
    is linear in n).

    When candidate [i] captures domain [v] through OUT-node [o], the
    two trees are combined by attaching [v]'s tree (re-rooted at [o])
    at the edge that already joins [o] to [i]'s tree; [IN] and [OUT]
    are merged with [OUT := OUT_i ∪ OUT_v − IN]. *)

type t

val singleton : graph:Netgraph.Graph.t -> int -> t
(** The initial structure of node [v]: [IN = {v}], [OUT] = all of
    [v]'s neighbours, each attached directly to [v]. *)

val origin : t -> int
val mem : t -> int -> bool
val mem_in : t -> int -> bool
val mem_out : t -> int -> bool
val in_nodes : t -> int list
(** Members of IN, sorted. *)

val out_nodes : t -> int list
(** Members of OUT, sorted. *)

val size : t -> int
(** [|IN|] — the domain size S that defines level and phase. *)

val out_size : t -> int
(** [|OUT|]; zero exactly when the domain spans the network. *)

val out_min : t -> int option
(** The smallest OUT node, or [None] when OUT is empty — equal to the
    head of {!out_nodes} without building or sorting the list. *)

val route : t -> src:int -> dst:int -> int list
(** The walk between two recorded nodes along the tree; length is at
    most the number of recorded nodes (the "linear length ANR").
    @raise Invalid_argument if either endpoint is not recorded. *)

val route_array : t -> src:int -> dst:int -> int array
(** {!route} as a preallocated int array: the parent map is climbed
    directly (no tree materialisation) and the only allocation is the
    exact-size result.  Same walk, element for element. *)

val merge : winner:t -> victim:t -> entry:int -> t
(** Combine after a capture through [entry].  [entry] must be an OUT
    node of [winner] and an IN node of [victim].
    @raise Invalid_argument otherwise. *)

val merge_into : winner:t -> victim:t -> entry:int -> unit
(** In-place {!merge}: the winner absorbs the victim, visiting only
    the victim's members — Θ(victim) per capture, so the winner's
    growing tables are never re-copied.  The victim is not modified
    (election freezes and aliases captured structures).
    @raise Invalid_argument (before any mutation) on a bad capture. *)

val spanning_tree : t -> Netgraph.Tree.t
(** The internal tree over all recorded nodes (IN and OUT), rooted at
    the origin.  When OUT is empty — the leader's final state — this
    spans the whole network and carries the announcement tour. *)

val is_valid : graph:Netgraph.Graph.t -> t -> bool
(** Structural invariants: the tree is a subgraph of [graph], IN and
    OUT partition the members, the origin is IN, and every OUT node's
    neighbour set meets IN. *)
