(** Tree-based computation of a globally sensitive function on the
    simulated hardware (Section 5.2).

    All nodes are triggered at time 0.  Leaves send their inputs to
    their parents; every interior node folds the partial results of
    its children as they arrive and forwards its subtree's value to
    its parent; the root terminates with [f(I_1, ..., I_n)].

    The network is the complete graph (every message is one direct
    hop), the cost model is the general parameterised one with
    arbitrary [C] and [P] — this is the experiment demonstrating that
    the optimal structure depends on C/P even when every node can
    reach every other in a single hop, i.e. that the new model does
    not degenerate to the traditional one. *)

type result = {
  value : int;  (** the fold computed at the root *)
  expected : int;  (** the same fold computed centrally *)
  time : float;  (** the root's final activation time *)
  predicted : float;
      (** {!Optimal_tree.predicted_completion} for the same shape —
          equal to [time] under deterministic worst-case delays *)
  syscalls : int;
  hops : int;
  messages : int;
}

val run :
  ?inputs:int array ->
  ?random_delays:Sim.Rng.t ->
  params:Optimal_tree.params ->
  shape:Optimal_tree.t ->
  spec:int Sensitive.spec ->
  unit ->
  result
(** Execute one convergecast over [shape] (concretised with node 0 as
    root).  [inputs] defaults to a deterministic pattern over the
    spec's alphabet.  With [random_delays] the hardware samples
    uniform delays in [(0,C] x (0,P]] instead of the worst case —
    correctness must be unaffected, completion can only improve.
    @raise Invalid_argument if [inputs] length differs from the shape
    size or an input is outside the spec's alphabet. *)

val trace_run :
  params:Optimal_tree.params ->
  shape:Optimal_tree.t ->
  spec:int Sensitive.spec ->
  unit ->
  result * Sim.Trace.t * float
(** Like {!run} but also returns the trace and the root's termination
    time, for the causal analysis of the appendix. *)
