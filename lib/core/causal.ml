type message = {
  id : int;
  src : int;
  send_time : float;
  dst : int;
  recv_time : float;
}

let messages_of_trace trace =
  let sends = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match e with
      | Sim.Trace.Send { node; time; msg_id; _ } ->
          Hashtbl.replace sends msg_id (node, time)
      | _ -> ())
    (Sim.Trace.events trace);
  List.filter_map
    (fun e ->
      match e with
      | Sim.Trace.Receive { node; time; msg_id; _ } -> (
          match Hashtbl.find_opt sends msg_id with
          | Some (src, send_time) ->
              Some { id = msg_id; src; send_time; dst = node; recv_time = time }
          | None -> None)
      | _ -> None)
    (Sim.Trace.events trace)

let causal_messages messages ~root ~t_end =
  (* Fixpoint from the definition: received by the root before t_end,
     or received before the receiver sends a causal message.  Iterate
     until stable (messages are few; each pass is linear). *)
  let causal = Hashtbl.create 64 in
  let is_causal m = Hashtbl.mem causal m.id in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun m ->
        if not (is_causal m) then begin
          let qualifies =
            (m.dst = root && m.recv_time <= t_end)
            || List.exists
                 (fun m' ->
                   is_causal m' && m'.src = m.dst
                   && m'.send_time >= m.recv_time)
                 messages
          in
          if qualifies then begin
            Hashtbl.replace causal m.id ();
            changed := true
          end
        end)
      messages
  done;
  List.filter is_causal messages

let last_causal_tree messages ~root ~t_end ~n =
  let causal = causal_messages messages ~root ~t_end in
  let last_send = Array.make n None in
  List.iter
    (fun m ->
      if m.src <> root && m.src < n then
        match last_send.(m.src) with
        | Some m' when m'.send_time >= m.send_time -> ()
        | _ -> last_send.(m.src) <- Some m)
    causal;
  let complete = ref true in
  let parents = ref [] in
  for v = 0 to n - 1 do
    if v <> root then
      match last_send.(v) with
      | Some m -> parents := (v, m.dst) :: !parents
      | None -> complete := false
  done;
  if not !complete then None
  else
    match Netgraph.Tree.of_parents ~root ~parents:!parents with
    | tree -> Some tree
    | exception Invalid_argument _ -> None
