type 'a spec = { name : string; op : 'a -> 'a -> 'a; alphabet : 'a list }

let fold spec = function
  | [] -> invalid_arg "Sensitive.fold: empty input vector"
  | x :: rest -> List.fold_left spec.op x rest

let is_associative_and_commutative spec =
  let a = spec.alphabet in
  let closed = List.for_all (fun x -> List.for_all (fun y -> List.mem (spec.op x y) a) a) a in
  let commutative =
    List.for_all (fun x -> List.for_all (fun y -> spec.op x y = spec.op y x) a) a
  in
  let associative =
    List.for_all
      (fun x ->
        List.for_all
          (fun y ->
            List.for_all
              (fun z -> spec.op (spec.op x y) z = spec.op x (spec.op y z))
              a)
          a)
      a
  in
  closed && commutative && associative

let is_globally_sensitive_vector spec vector =
  let base = fold spec (Array.to_list vector) in
  let sensitive_at j =
    List.exists
      (fun m ->
        let altered = Array.copy vector in
        altered.(j) <- m;
        fold spec (Array.to_list altered) <> base)
      spec.alphabet
  in
  Array.length vector > 0
  && Array.for_all Fun.id (Array.mapi (fun j _ -> sensitive_at j) vector)

let find_sensitive_vector ?rng spec ~n =
  if n <= 0 then invalid_arg "Sensitive.find_sensitive_vector: n >= 1";
  let constant_candidates =
    List.map (fun a -> Array.make n a) spec.alphabet
  in
  let random_candidates =
    match rng with
    | None -> []
    | Some r ->
        List.init 64 (fun _ ->
            Array.init n (fun _ -> Sim.Rng.pick r spec.alphabet))
  in
  List.find_opt
    (is_globally_sensitive_vector spec)
    (constant_candidates @ random_candidates)

let is_globally_sensitive ?rng spec ~n =
  Option.is_some (find_sensitive_vector ?rng spec ~n)

let is_globally_sensitive_exhaustive spec ~n =
  if n <= 0 then invalid_arg "Sensitive.is_globally_sensitive_exhaustive: n >= 1";
  let alphabet = Array.of_list spec.alphabet in
  let k = Array.length alphabet in
  let space = float_of_int k ** float_of_int n in
  if space > 100_000.0 then
    invalid_arg "Sensitive.is_globally_sensitive_exhaustive: space too large";
  let vector = Array.make n alphabet.(0) in
  let rec search pos =
    if pos = n then is_globally_sensitive_vector spec vector
    else
      let rec try_values i =
        i < k
        && begin
             vector.(pos) <- alphabet.(i);
             search (pos + 1) || try_values (i + 1)
           end
      in
      try_values 0
  in
  search 0

let range k = List.init k Fun.id

let sum_mod k =
  if k < 2 then invalid_arg "Sensitive.sum_mod: k >= 2";
  { name = Printf.sprintf "sum mod %d" k; op = (fun a b -> (a + b) mod k); alphabet = range k }

let max_spec ~hi =
  if hi < 1 then invalid_arg "Sensitive.max_spec: hi >= 1";
  { name = Printf.sprintf "max over 0..%d" hi; op = max; alphabet = range (hi + 1) }

let xor_spec ~bits =
  if bits < 1 || bits > 16 then invalid_arg "Sensitive.xor_spec: 1 <= bits <= 16";
  { name = Printf.sprintf "xor (%d bits)" bits; op = ( lxor ); alphabet = range (1 lsl bits) }

let bool_and = { name = "and"; op = ( && ); alphabet = [ false; true ] }
let bool_or = { name = "or"; op = ( || ); alphabet = [ false; true ] }

let gcd_spec ~values =
  if values = [] || List.exists (fun v -> v < 1) values then
    invalid_arg "Sensitive.gcd_spec: positive values required";
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  (* close the alphabet under gcd *)
  let closure = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace closure v ()) values;
  let rec saturate () =
    let added = ref false in
    let current = Hashtbl.fold (fun k () acc -> k :: acc) closure [] in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            let g = gcd a b in
            if not (Hashtbl.mem closure g) then begin
              Hashtbl.replace closure g ();
              added := true
            end)
          current)
      current;
    if !added then saturate ()
  in
  saturate ();
  let alphabet =
    Hashtbl.fold (fun k () acc -> k :: acc) closure [] |> List.sort compare
  in
  { name = "gcd"; op = gcd; alphabet }
