(** ARPANET-style flooding broadcast (the baseline of [MRR80]).

    On its first receipt of the message each node forwards it over
    every active incident link except the one it arrived on.  Under
    the traditional measure this is the standard O(m)-message,
    O(diameter)-time broadcast; under the new measure every forwarded
    copy still costs a full system call at the receiving NCU, so the
    system-call complexity stays Θ(m) — the paper's motivation for
    the branching-paths scheme. *)

type msg = { origin : int }

val spec :
  reached:bool array ->
  view:Netgraph.Graph.t ->
  int ->
  msg Hardware.Network.handlers
(** Low-level handler factory, for embedding in custom harnesses. *)

val run :
  ?config:Broadcast.config ->
  graph:Netgraph.Graph.t ->
  root:int ->
  unit ->
  Broadcast.result
