(** ARPANET-style flooding broadcast (the baseline of [MRR80]).

    On its first receipt of the message each node forwards it over
    every active incident link except the one it arrived on.  Under
    the traditional measure this is the standard O(m)-message,
    O(diameter)-time broadcast; under the new measure every forwarded
    copy still costs a full system call at the receiving NCU, so the
    system-call complexity stays Θ(m) — the paper's motivation for
    the branching-paths scheme. *)

type msg =
  | Data of { origin : int; attempt : int }
      (** the flooded payload; [attempt] > 0 marks a retransmission
          wave (each node floods once per attempt) *)
  | Ack of { src : int }
      (** recovery only: acceptance ack, routed up a BFS tree of the
          root's view *)

val spec :
  ?recovery:Broadcast.Recovery.t ->
  ?ack_tree:Netgraph.Tree.t ->
  reached:bool array ->
  view:Netgraph.Graph.t ->
  int ->
  msg Hardware.Network.handlers
(** Low-level handler factory, for embedding in custom harnesses.
    [ack_tree] must accompany [recovery]: the fixed tree acks climb. *)

val run :
  ?config:Broadcast.config ->
  graph:Netgraph.Graph.t ->
  root:int ->
  unit ->
  Broadcast.result
(** When [config.recover] is set the flood self-heals: each node acks
    every accepted attempt to the root along a BFS tree of the view,
    and the root re-floods under capped exponential backoff until all
    acked or the retry budget is spent (DESIGN.md §16). *)
