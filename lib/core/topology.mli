(** Topology views: the data the maintenance protocol replicates.

    Each node owns a {e local view} — the states of its adjacent links
    — stamped with a sequence number incremented at every broadcast
    (as in the ARPANET).  A node's picture of the network is a
    database of the freshest local view it has received from each
    origin; the believed topology is assembled from those views.

    A view is stored and shipped as a {e delta} against the physical
    adjacency: only the peers whose link the origin believes down are
    listed.  A healthy node's view is four words (the empty delta is
    shared), so steady-state maintenance payloads no longer carry
    Θ(degree) link lists. *)

type local_view = {
  origin : int;
  seq : int;
  downs : int array;  (** sorted peers whose link the origin believes down *)
}

val no_downs : int array
(** The shared empty delta — the view body of a node with all links
    up.  Physically equal across all healthy views. *)

val view_of_downs : origin:int -> seq:int -> int array -> local_view
(** Build a view from an unsorted down-peer array (copied and sorted;
    the empty array is replaced by {!no_downs}). *)

val reports_down : local_view -> int -> bool
(** Does the view list this peer as down?  Binary search, no
    allocation. *)

type db

val create : unit -> db

val attach_base : db -> local_view array -> unit
(** Install a shared base layer: a dense by-origin view array the
    database falls back to for origins its overlay has not shadowed.
    Preseeding every node with full topology knowledge shares ONE
    seq-0 array across all databases — Θ(n) total instead of Θ(n²)
    per-node entries.  Received views shadow base entries by the usual
    freshness rule. *)

val update : db -> local_view -> bool
(** Absorb a view if it is strictly fresher than the stored one (or no
    view from that origin is stored).  Returns whether it was
    absorbed. *)

val update_all : db -> local_view list -> bool
(** Absorb many views; true if any was fresher. *)

val set_own : db -> local_view -> unit
(** Overwrite the entry for the node's own origin unconditionally —
    used when the data-link layer reports a local change between
    broadcasts. *)

val find : db -> int -> local_view option
val all_views : db -> local_view list
(** Views sorted by origin. *)

val known_nodes : db -> int list

val believed_edge : db -> int -> int -> bool
(** Is a physical edge believed active: at least one endpoint has
    reported and no reporting endpoint lists the other as down (the
    ARPANET AND rule; a single report is trusted). *)

val believed_graph : db -> graph:Netgraph.Graph.t -> Netgraph.Graph.t
(** The topology the database describes, enumerated over the physical
    edge set (views are deltas, so the believed graph is a subgraph of
    the real one by construction — routes computed on it are
    well-formed ANR walks). *)

val consistent_with :
  db -> graph:Netgraph.Graph.t -> actual:Netgraph.Graph.t -> node:int -> bool
(** Eventual-consistency check of [T77]: does the believed topology
    agree with [actual] (the currently-active subgraph of the physical
    [graph]) on [node]'s actual connected component — same reachable
    node set and same edge set within it? *)
