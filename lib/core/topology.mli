(** Topology views: the data the maintenance protocol replicates.

    Each node owns a {e local view} — the states of its adjacent links
    — stamped with a sequence number incremented at every broadcast
    (as in the ARPANET).  A node's picture of the network is a
    database of the freshest local view it has received from each
    origin; the believed topology is assembled from those views. *)

type local_view = {
  origin : int;
  seq : int;
  links : (int * bool) list;  (** (neighbour, link-is-up) *)
}

type db

val create : unit -> db

val update : db -> local_view -> bool
(** Absorb a view if it is strictly fresher than the stored one (or no
    view from that origin is stored).  Returns whether it was
    absorbed. *)

val update_all : db -> local_view list -> bool
(** Absorb many views; true if any was fresher. *)

val set_own : db -> local_view -> unit
(** Overwrite the entry for the node's own origin unconditionally —
    used when the data-link layer reports a local change between
    broadcasts. *)

val find : db -> int -> local_view option
val all_views : db -> local_view list
(** Views sorted by origin. *)

val known_nodes : db -> int list

val believed_graph : db -> n:int -> Netgraph.Graph.t
(** The topology the database describes: an edge (u, v) is believed
    active iff both endpoints' stored views say so; if only one
    endpoint has reported, its word is taken.  Since views only ever
    mention physically adjacent nodes, the believed graph is a
    subgraph of the real one, so routes computed on it are
    well-formed ANR walks. *)

val consistent_with :
  db -> actual:Netgraph.Graph.t -> node:int -> bool
(** Eventual-consistency check of [T77]: does the believed topology
    agree with [actual] (the currently-active subgraph) on [node]'s
    actual connected component — same reachable node set and same
    edge set within it? *)
