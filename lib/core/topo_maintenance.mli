(** The full topology-maintenance protocol of Section 3.

    Every node periodically broadcasts topology information with an
    incremented sequence number; remote information is merged by
    freshness; eventual consistency means that once topological
    changes stop, every node's believed topology converges to the
    true state of its connected component (Theorem 1, after [T77]).

    The broadcast primitive is pluggable so the paper's comparison can
    be measured like-for-like:
    - [Branching] — the paper's one-way branching-paths broadcast over
      the minimum-hop tree of the broadcaster's current view; n system
      calls and O(log n) time per broadcast, convergent under
      failures;
    - [Flood] — ARPANET flooding; O(m) system calls, O(n) time,
      convergent;
    - [Dfs_token] — the single depth-first token; n system calls and
      one time unit, but {e not} one-way convergent: with the cyclic
      child order of the Section 3 example it deadlocks forever.

    By default each node broadcasts only its own local view (so full
    knowledge needs O(diameter) rounds); with [full_view] it
    broadcasts everything it knows, cutting convergence to
    O(log diameter) rounds (the comment after Theorem 1). *)

type method_ = Branching | Flood | Dfs_token

type params = {
  method_ : method_;
  period : float;  (** time between a node's successive broadcasts *)
  max_rounds : int;  (** give up declaring convergence after this *)
  full_view : bool;  (** broadcast the whole database, not just own view *)
  preseed : bool;
      (** start every node with complete (pre-failure) topology
          knowledge, as in the Section 3 example *)
  cost : Hardware.Cost_model.t;
  dfs_child_order : (self:int -> children:int list -> int list) option;
      (** tour-order choice for [Dfs_token]; default increasing ids *)
  dmax : int option;
      (** when set, the hardware refuses headers longer than this
          (counted as drops) — the Section 2 path-length restriction
          applied live; the branching-paths broadcast needs at most n
          elements while a depth-first token needs up to 2n *)
  stagger : Sim.Rng.t option;
      (** when set, each node's periodic broadcasts start at a uniform
          random offset within the first period instead of in
          lockstep — eventual consistency must be schedule-independent *)
  trace : Sim.Trace.t option;
      (** when set, the run records hardware events into this trace *)
  registry : Hardware.Registry.t option;
      (** when set, receives the [net.*] instruments plus
          [maint.broadcasts] and the [maint.rounds] gauge *)
  reset_on_recover : bool;
      (** when a node recovers (via [node_events] or a chaos plan), it
          rejoins with an empty remote database: only its own local
          view survives, rebuilt from the links it can see.  Its own
          sequence counter is kept, so its first post-recovery
          broadcast outranks any stale view of it held elsewhere.
          Default [false] (the historical behaviour: a revived node
          resumes with its stale pre-failure database). *)
  origins : int list option;
      (** when set, only these nodes run the periodic broadcast (the
          others still record link state, merge views and relay).
          Convergence then means dissemination: every node holds each
          origin's freshest view — checked in Θ(n·k) per round instead
          of n believed-graph rebuilds, which is what lets the scaling
          bench run maintenance rounds at n=65536 and beyond.  [None]
          (default) is the full protocol: every node broadcasts and
          convergence is the [T77] consistency check. *)
  recover : Hardware.Recover.t option;
      (** when set, a recovering origin resumes its round immediately:
          the node-recovery hook triggers an out-of-period rebroadcast
          (one extra activation, counted in [recover.resumes]) instead
          of waiting for the next periodic tick — combined with
          [reset_on_recover], the node re-seeds its fresh view into
          the network the moment it revives (DESIGN.md §16).  The
          periodic timer chain is unaffected.  Default [None]. *)
}

val default_params : unit -> params
(** Branching method, period 64, 64 max rounds, own-view only, no
    preseed, C=0/P=1 cost, no reset on recovery, all nodes broadcast. *)

type event = { at : float; edge : int * int; up : bool }
(** A scheduled link transition. *)

type node_event = { at_time : float; node : int; alive : bool }
(** A scheduled whole-node failure or recovery: an inactive node is a
    node all of whose links are inactive (Section 2). *)

type outcome = {
  converged : bool;
  rounds : int;
      (** broadcast rounds completed when convergence was first
          observed (or [max_rounds]) *)
  syscalls : int;
  hops : int;
  time : float;  (** simulation time at the final convergence check *)
  correct_per_round : int list;
      (** after each round, how many nodes' views were consistent *)
  dbs : Topology.db array;
      (** each node's final database — inspectable by tests and the
          chaos oracles (e.g. what a reset node knows after revival) *)
}

val run :
  ?params:params ->
  ?node_events:node_event list ->
  ?chaos:Hardware.Fault_plan.t ->
  graph:Netgraph.Graph.t ->
  events:event list ->
  unit ->
  outcome
(** Run the protocol under the scheduled [events]/[node_events] plus
    the optional chaos [plan]; all three are armed through
    {!Hardware.Fault_plan}, so node recoveries honour
    [reset_on_recover] whichever way they were injected. *)

val cyclic_child_order :
  ring:int list -> self:int -> children:int list -> int list
(** The adversarial tour order of the Section 3 example: children that
    lie on [ring] are visited starting from the ring successor of
    [self], before any pendant nodes. *)

val deadlock_example_graph : unit -> Netgraph.Graph.t * (int * int) list
(** The six-node example: a triangle u,v,w (ids 0,1,2) with pendant
    nodes u1,v1,w1 (ids 3,4,5); returns the graph and the three
    pendant edges whose simultaneous failure triggers the
    non-convergence of the depth-first method. *)
