module Graph = Netgraph.Graph
module Network = Hardware.Network
module Anr = Hardware.Anr

type token = {
  torigin : int;  (* the candidate's origin *)
  tsize : int;  (* domain size at tour start: level = (tsize, torigin) *)
  entry : int;  (* o, the OUT node through which the tour entered *)
  home_walk : int array;  (* walk from [entry] back to [torigin] *)
  hops_used : int;  (* direct messages spent on this tour *)
  tepoch : int;  (* recovery epoch the token belongs to (0 without recovery) *)
}

type verdict =
  | Captured_domain of { victim : int; victim_inout : Inout.t; entry : int }
  | Unsuccessful

type msg =
  | Tour of token
  | Return of { to_origin : int; verdict : verdict; repoch : int }
  | Announce of { leader : int; aepoch : int }

type origin_state = {
  mutable cstatus : [ `Touring | `Inactive | `Leader ];
  mutable inout : Inout.t;
  mutable waiting : token option;
}

type captured_state = {
  frozen : Inout.t;  (* the INOUT tree as of capture time *)
  parent_walk : int array;  (* walk from this node to F's origin *)
}

type role = Unstarted | Origin of origin_state | Captured of captured_state

type outcome = {
  leader : int;
  believed_leader : int option array;
  election_syscalls : int;
  start_syscalls : int;
  announce_syscalls : int;
  total_syscalls : int;
  hops : int;
  time : float;
  tours : int;
  captures : int;
  max_route : int;
  notify_syscalls : int;
  spanning_tree : Netgraph.Tree.t;
}

(* floor(log2 size) for size >= 1 *)
let phase size =
  let rec go p = if 1 lsl (p + 1) > size then p else go (p + 1) in
  go 0

let level_of_token t = (t.tsize, t.torigin)

let route_len_buckets =
  [| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0; 512.0; 1024.0 |]

type chaos_outcome = {
  leaders : int list;
  believed : int option array;
  election_deliveries : int;
  chaos_syscalls : int;
  chaos_hops : int;
  chaos_drops : int;
  chaos_time : float;
}

(* Per-run state of the epoch-restart recovery layer (DESIGN.md §16).
   An epoch is one attempt at the election: every message carries its
   sender's epoch, a node receiving a newer epoch forgets its role and
   re-joins lazily (the [ensure_started] pattern), and a touring origin
   whose watchdog expires restarts as a fresh singleton candidate in
   the next epoch.  Stale-epoch messages are dropped on receipt, so at
   most one token per (origin, epoch) is ever live and each epoch runs
   the paper's own election among the nodes it recruits. *)
type recovery_state = {
  rc : Hardware.Recover.t;
  robs : Hardware.Recover.obs option;
  rngs : Sim.Rng.t array;  (* per-node backoff jitter streams *)
  epochs : int array;
  restarts_used : int array;  (* watchdog budget consumed per node *)
  dogs : Sim.Timer.t option array;
}

let run_core ?(cost = Hardware.Cost_model.new_model ()) ?starters ?rng
    ?(notify_supporters = false) ?recover ?trace ?registry ?chaos ~graph () =
  let n = Graph.n graph in
  if not (Graph.is_connected graph) then
    invalid_arg "Election.run: the graph must be connected";
  let obs =
    match registry with
    | Some r when Hardware.Registry.enabled r ->
        Some
          ( Hardware.Registry.counter r "election.tours"
              ~help:"tours undertaken across all candidates",
            Hardware.Registry.counter r "election.captures"
              ~help:"domain captures",
            Hardware.Registry.histogram r "election.route_len"
              ~help:"direct-message route length (header elements)"
              ~buckets:route_len_buckets )
    | _ -> None
  in
  let obs_tour () =
    match obs with Some (c, _, _) -> Hardware.Registry.incr c | None -> ()
  in
  let obs_capture () =
    match obs with Some (_, c, _) -> Hardware.Registry.incr c | None -> ()
  in
  let obs_route len =
    match obs with
    | Some (_, _, h) -> Hardware.Registry.observe h (float_of_int len)
    | None -> ()
  in
  let starters =
    match starters with
    | None -> List.init n Fun.id
    | Some [] -> invalid_arg "Election.run: starters must be non-empty"
    | Some l -> l
  in
  let engine = Sim.Engine.create ~queue_capacity:n () in
  let roles = Array.make n Unstarted in
  let believed_leader = Array.make n None in
  (* recovery only: node [v]'s next activation is a post-crash rejoin,
     not an ordinary start (set by the fault plan's on_node hook) *)
  let pending_restart = Array.make n false in
  let tours = ref 0 in
  let captures = ref 0 in
  let max_route = ref 0 in
  let rstate =
    match recover with
    | None -> None
    | Some rc ->
        Some
          {
            rc;
            robs = Hardware.Recover.obs registry;
            rngs = Hardware.Recover.streams rc ~n;
            epochs = Array.make n 0;
            restarts_used = Array.make n 0;
            dogs = Array.make n None;
          }
  in
  let epoch_of v =
    match rstate with None -> 0 | Some rs -> rs.epochs.(v)
  in
  let cancel_dog v =
    match rstate with
    | None -> ()
    | Some rs -> (
        match rs.dogs.(v) with Some d -> Sim.Timer.cancel d | None -> ())
  in

  let send ctx ~label walk m =
    max_route := max !max_route (Array.length walk - 1);
    obs_route (Array.length walk - 1);
    Network.send_walk_arr ~label ctx ~walk m
  in

  (* Route from [v] (currently holding the token) back to the token's
     origin: first to [entry] along the INOUT tree [v] recorded when it
     was (or still is) an origin — the tour reached [v] by climbing
     virtual-tree parents, so [entry] lies in that tree — then along
     the reverse walk the token carried from its origin.  Both pieces
     are int arrays; splicing them (the walk-home shares [entry]) is
     two blits into one exact-size array. *)
  let walk_home v token =
    let inout =
      match roles.(v) with
      | Origin st -> st.inout
      | Captured cap -> cap.frozen
      | Unstarted -> invalid_arg "Election.walk_home: unstarted node"
    in
    let to_entry = Inout.route_array inout ~src:v ~dst:token.entry in
    let a = Array.length to_entry and b = Array.length token.home_walk in
    let walk = Array.make (a + b - 1) 0 in
    Array.blit to_entry 0 walk 0 a;
    Array.blit token.home_walk 1 walk a (b - 1);
    walk
  in

  let return_unsuccessful ctx v token =
    send ctx ~label:"election" (walk_home v token)
      (Return
         {
           to_origin = token.torigin;
           verdict = Unsuccessful;
           repoch = token.tepoch;
         })
  in

  (* [v] is an origin whose level is below the token's; its whole
     domain joins the token's candidate (rule 2.2). *)
  let capture ctx v token =
    match roles.(v) with
    | Origin st ->
        incr captures;
        obs_capture ();
        cancel_dog v;
        let home = walk_home v token in
        roles.(v) <- Captured { frozen = st.inout; parent_walk = home };
        send ctx ~label:"election" home
          (Return
             {
               to_origin = token.torigin;
               verdict =
                 Captured_domain
                   { victim = v; victim_inout = st.inout; entry = token.entry };
               repoch = token.tepoch;
             })
    | Captured _ | Unstarted -> assert false
  in

  let choose_target st =
    match rng with
    | None -> (
        (* deterministic pick = head of the sorted OUT list, obtained
           with a fold instead of building and sorting the list *)
        match Inout.out_min st.inout with
        | Some o -> o
        | None -> assert false)
    | Some r -> (
        match Inout.out_nodes st.inout with
        | [] -> assert false
        | outs -> Sim.Rng.pick r outs)
  in

  let rec begin_tour ctx v =
    match roles.(v) with
    | Origin st ->
        if Inout.out_size st.inout = 0 then begin
          st.cstatus <- `Leader;
          cancel_dog v;
          believed_leader.(v) <- Some v;
          announce ctx v st
        end
        else begin
          let o = choose_target st in
          let walk = Inout.route_array st.inout ~src:v ~dst:o in
          let len = Array.length walk in
          let token =
            {
              torigin = v;
              tsize = Inout.size st.inout;
              entry = o;
              home_walk = Array.init len (fun i -> walk.(len - 1 - i));
              hops_used = 1;
              tepoch = epoch_of v;
            }
          in
          st.cstatus <- `Touring;
          incr tours;
          obs_tour ();
          send ctx ~label:"election" walk (Tour token);
          arm_dog ctx v
        end
    | Captured _ | Unstarted -> assert false

  (* Tour-abandonment watchdog: armed whenever [v] launches a tour,
     cancelled the moment [v] stops being a touring origin (leader,
     captured, inactive, or reset into a newer epoch).  An expiry with
     [v] still touring means the token or its return was lost to a
     fault; if [v] is alive it restarts as a fresh singleton candidate
     in the next epoch, under capped exponential backoff and a bounded
     restart budget so non-healing schedules still quiesce. *)
  and arm_dog ctx v =
    match rstate with
    | None -> ()
    | Some rs ->
        let dog =
          match rs.dogs.(v) with
          | Some d -> d
          | None ->
              let d = Network.watchdog ctx in
              rs.dogs.(v) <- Some d;
              d
        in
        let attempt = rs.restarts_used.(v) in
        let delay = Hardware.Recover.delay rs.rc ~rng:rs.rngs.(v) ~attempt in
        (match rs.robs with
        | Some o -> Hardware.Registry.observe o.Hardware.Recover.r_backoff delay
        | None -> ());
        let armed_epoch = rs.epochs.(v) in
        Network.arm_watchdog ~label:"election-watchdog" ctx dog ~delay
          (fun () ->
            match roles.(v) with
            | Origin { cstatus = `Touring; _ }
              when rs.epochs.(v) = armed_epoch -> (
                (match rs.robs with
                | Some o ->
                    Hardware.Registry.incr o.Hardware.Recover.r_timeouts
                | None -> ());
                if
                  rs.restarts_used.(v)
                  >= rs.rc.Hardware.Recover.max_retries
                then (
                  match rs.robs with
                  | Some o ->
                      Hardware.Registry.incr o.Hardware.Recover.r_give_ups
                  | None -> ())
                else if
                  not (Network.node_is_alive (Network.network ctx) v)
                then begin
                  (* still crashed: wait out the fault on the same
                     backoff clock; the budget bounds total re-arms *)
                  rs.restarts_used.(v) <- rs.restarts_used.(v) + 1;
                  arm_dog ctx v
                end
                else restart_node ctx v)
            | _ -> ())

  (* Restart [v] as a fresh singleton candidate in the next epoch:
     the shared tail of a watchdog expiry (tour abandoned) and a
     post-crash rejoin (local state presumed stale, and any announce
     that passed while [v] was dead is lost for good — only a new
     epoch re-establishes a universally believed leader). *)
  and restart_node ctx v =
    match rstate with
    | None -> ()
    | Some rs ->
        rs.restarts_used.(v) <- rs.restarts_used.(v) + 1;
        (match rs.robs with
        | Some o -> Hardware.Registry.incr o.Hardware.Recover.r_restarts
        | None -> ());
        rs.epochs.(v) <- rs.epochs.(v) + 1;
        believed_leader.(v) <- None;
        roles.(v) <-
          Origin
            {
              cstatus = `Touring;
              inout = Inout.singleton ~graph v;
              waiting = None;
            };
        begin_tour ctx v

  and announce ctx v st =
    match Walks.euler_tour_truncated (Inout.spanning_tree st.inout) with
    | [] | [ _ ] -> ()
    | tour ->
        let marked = Walks.mark_first_visits tour in
        let route =
          Anr.of_walk_marked (Network.graph (Network.network ctx)) marked
        in
        Network.send ~label:"announce" ctx ~route
          (Announce { leader = v; aepoch = epoch_of v })
  in

  (* The comparison of rules (2.1)-(2.4), performed when [v]'s own
     candidate is back home (or was never away): the waiting token
     either captures [v] or returns home beaten. *)
  let resolve_waiting ctx v =
    match roles.(v) with
    | Origin st -> (
        match st.waiting with
        | None -> ()
        | Some j ->
            st.waiting <- None;
            let lv = (Inout.size st.inout, v) in
            if lv > level_of_token j then return_unsuccessful ctx v j
            else capture ctx v j)
    | Captured _ | Unstarted -> ()
  in

  let ensure_started ctx =
    let v = Network.self ctx in
    match roles.(v) with
    | Unstarted ->
        roles.(v) <-
          Origin
            {
              cstatus = `Touring;
              inout = Inout.singleton ~graph v;
              waiting = None;
            };
        begin_tour ctx v
    | Origin _ | Captured _ -> ()
  in

  let process_tour ctx v token =
    match roles.(v) with
    | Unstarted -> assert false
    | Origin st -> (
        let lv = (Inout.size st.inout, v) in
        let lt = level_of_token token in
        match st.cstatus with
        | `Leader ->
            (* unreachable without faults: a leader's domain spans the
               graph, so no other candidate can still be touring.  A
               fault schedule can strand a stale token that arrives
               late; the leader's level (n, v) beats it — rule 2.1 *)
            return_unsuccessful ctx v token
        | `Inactive ->
            if lv > lt then return_unsuccessful ctx v token  (* 2.1 *)
            else capture ctx v token  (* 2.2 *)
        | `Touring -> (
            if lv > lt then return_unsuccessful ctx v token  (* 2.1 *)
            else
              match st.waiting with
              | None -> st.waiting <- Some token  (* 2.3 *)
              | Some j ->
                  (* 2.4: the lower-level candidate returns inactive *)
                  if lt < level_of_token j then
                    return_unsuccessful ctx v token
                  else begin
                    st.waiting <- Some token;
                    return_unsuccessful ctx v j
                  end))
    | Captured cap ->
        (* rule 1: hop budget is phase + 1 *)
        if token.hops_used > phase token.tsize then
          return_unsuccessful ctx v token
        else
          let token = { token with hops_used = token.hops_used + 1 } in
          send ctx ~label:"election" cap.parent_walk (Tour token)
  in

  let process_return ctx v verdict =
    match roles.(v) with
    | Origin st -> (
        (match verdict with
        | Unsuccessful -> st.cstatus <- `Inactive
        | Captured_domain { victim_inout; entry; _ } ->
            (* in-place absorb: Θ(victim) per capture; the victim's
               structure stays frozen (relays still route through it) *)
            Inout.merge_into ~winner:st.inout ~victim:victim_inout ~entry;
            if notify_supporters then
              (* the naive variant: tell every member of the captured
                 domain who it now supports (one direct message each) *)
              List.iter
                (fun u ->
                  if u <> v then
                    send ctx ~label:"notify"
                      (Inout.route_array st.inout ~src:v ~dst:u)
                      (Announce { leader = v; aepoch = epoch_of v }))
                (Inout.in_nodes victim_inout));
        resolve_waiting ctx v;
        (* if the waiting candidate captured us, we are no longer an
           origin; otherwise an active candidate tours again *)
        match roles.(v) with
        | Origin st when st.cstatus = `Touring -> begin_tour ctx v
        | Origin _ -> cancel_dog v
        | Captured _ | Unstarted -> ())
    | Captured _ | Unstarted -> assert false
  in

  let handlers _v =
    {
      Network.on_start =
        (fun ctx ->
          let v = Network.self ctx in
          if pending_restart.(v) then begin
            pending_restart.(v) <- false;
            restart_node ctx v
          end
          else ensure_started ctx);
      on_message =
        (fun ctx ~via:_ m ->
          let v = Network.self ctx in
          (* Epoch gate (recovery only): drop messages from dead epochs;
             a Tour/Announce from a newer epoch makes [v] forget its
             role and re-join lazily.  A Return from a newer epoch is
             impossible — only [v]'s own tours produce Returns to [v],
             and those carry [v]'s epoch at launch time — so it is
             dropped too (it can only be stale). *)
          let stale =
            match rstate with
            | None -> false
            | Some rs -> (
                let e =
                  match m with
                  | Tour t -> t.tepoch
                  | Return r -> r.repoch
                  | Announce a -> a.aepoch
                in
                if e < rs.epochs.(v) then true
                else if e = rs.epochs.(v) then false
                else
                  match m with
                  | Return _ -> true
                  | Tour _ ->
                      (* recruited into a newer epoch: forget the old
                         role and re-join as a fresh lazy starter *)
                      rs.epochs.(v) <- e;
                      cancel_dog v;
                      believed_leader.(v) <- None;
                      roles.(v) <- Unstarted;
                      false
                  | Announce _ ->
                      (* a newer epoch already completed: adopt its
                         result without launching a doomed candidacy *)
                      rs.epochs.(v) <- e;
                      cancel_dog v;
                      false)
          in
          if not stale then begin
            (match (m, rstate) with
            | Announce _, Some _ -> ()
            | _ -> ensure_started ctx);
            match m with
            | Tour token -> process_tour ctx v token
            | Return { to_origin; verdict; _ } ->
                assert (to_origin = v);
                process_return ctx v verdict
            | Announce { leader; _ } -> believed_leader.(v) <- Some leader
          end);
      on_link_change = (fun _ ~peer:_ ~up:_ -> ());
    }
  in
  (* the paper's "linear length" ANRs: tours and returns concatenate at
     most two linear routes, and the announcement tour is < 2n, so a
     hard dmax of 2n + 2 must never fire - enforced live *)
  let net =
    Network.create ?trace ?registry ~dmax:((2 * n) + 2) ~engine ~cost ~graph
      ~handlers ()
  in
  (match chaos with
  | Some plan -> (
      match rstate with
      | None -> Hardware.Fault_plan.arm net plan
      | Some rs ->
          (* a recovered node rejoins through a fresh activation (one
             priced syscall) rather than synchronously inside the
             fault event, so the restart is billed like any start *)
          Hardware.Fault_plan.arm
            ~on_node:(fun ~node ~alive ->
              if
                alive
                && rs.restarts_used.(node) < rs.rc.Hardware.Recover.max_retries
              then begin
                pending_restart.(node) <- true;
                Network.start ~label:"recover-restart" net node
              end)
            net plan)
  | None -> ());
  List.iter (fun v -> Network.start ~label:"start" net v) starters;
  (match Sim.Engine.run engine with
  | Sim.Engine.Quiescent -> ()
  | Sim.Engine.Time_limit | Sim.Engine.Event_limit -> assert false);
  Network.publish_distributions net;
  (roles, believed_leader, net, engine, !tours, !captures, !max_route)

let run ?cost ?starters ?rng ?notify_supporters ?recover ?trace ?registry
    ~graph () =
  let roles, believed_leader, net, engine, tours, captures, max_route =
    run_core ?cost ?starters ?rng ?notify_supporters ?recover ?trace ?registry
      ~graph ()
  in
  let leader =
    let found = ref None in
    Array.iteri
      (fun v role ->
        match role with
        | Origin { cstatus = `Leader; _ } -> (
            match !found with
            | None -> found := Some v
            | Some _ -> invalid_arg "Election.run: two leaders elected")
        | _ -> ())
      roles;
    match !found with
    | Some v -> v
    | None -> invalid_arg "Election.run: no leader elected"
  in
  let spanning_tree =
    match roles.(leader) with
    | Origin st -> Inout.spanning_tree st.inout
    | Captured _ | Unstarted -> assert false
  in
  let m = Network.metrics net in
  {
    leader;
    believed_leader;
    election_syscalls = Hardware.Metrics.syscalls_labelled m "election";
    start_syscalls = Hardware.Metrics.syscalls_labelled m "start";
    announce_syscalls = Hardware.Metrics.syscalls_labelled m "announce";
    total_syscalls = Hardware.Metrics.syscalls m;
    hops = Hardware.Metrics.hops m;
    time = Sim.Engine.now engine;
    tours;
    captures;
    max_route;
    notify_syscalls = Hardware.Metrics.syscalls_labelled m "notify";
    spanning_tree;
  }

let run_chaos ?cost ?starters ?rng ?recover ?trace ?registry ?chaos ~graph () =
  let roles, believed_leader, net, engine, _tours, _captures, _max_route =
    run_core ?cost ?starters ?rng ?recover ?trace ?registry ?chaos ~graph ()
  in
  let leaders = ref [] in
  Array.iteri
    (fun v role ->
      match role with
      | Origin { cstatus = `Leader; _ } -> leaders := v :: !leaders
      | _ -> ())
    roles;
  let m = Network.metrics net in
  {
    leaders = List.rev !leaders;
    believed = believed_leader;
    election_deliveries = Hardware.Metrics.syscalls_labelled m "election";
    chaos_syscalls = Hardware.Metrics.syscalls m;
    chaos_hops = Hardware.Metrics.hops m;
    chaos_drops = Hardware.Metrics.drops m;
    chaos_time = Sim.Engine.now engine;
  }
