module Graph = Netgraph.Graph
module Tree = Netgraph.Tree
module Network = Hardware.Network

type msg = { origin : int }

(* Walks to every other node of the root's component, grouped by first
   hop.  Minimum-hop routes from the BFS tree of the view. *)
let walk_groups ~view ~root =
  let tree = Netgraph.Spanning.bfs_tree view ~root in
  let walks =
    List.filter_map
      (fun v -> if v = root then None else Some (Tree.path_from_root tree v))
      (Tree.nodes tree)
  in
  let groups = Hashtbl.create 8 in
  List.iter
    (fun walk ->
      match walk with
      | _ :: first :: _ ->
          let existing =
            Option.value ~default:[] (Hashtbl.find_opt groups first)
          in
          Hashtbl.replace groups first (walk :: existing)
      | _ -> assert false)
    walks;
  Hashtbl.fold (fun _ group acc -> List.rev group :: acc) groups []

let rounds_needed graph ~root =
  let groups = walk_groups ~view:graph ~root in
  List.fold_left (fun acc g -> max acc (List.length g)) 0 groups

let spec ~reached ~view v =
  {
    Network.on_start =
      (fun ctx ->
        let root = Network.self ctx in
        let m = { origin = root } in
        let groups = ref (walk_groups ~view ~root) in
        (* One packet per outgoing link per activation; re-arm a timer
           for the next round while any group is non-empty. *)
        let rec dispatch_round ctx =
          let remaining =
            List.filter_map
              (fun group ->
                match group with
                | [] -> None
                | walk :: rest ->
                    Network.send_walk ~label:"direct" ctx ~walk m;
                    if rest = [] then None else Some rest)
              !groups
          in
          groups := remaining;
          if remaining <> [] then
            Network.set_timer ~label:"direct-round" ctx ~delay:0.0 (fun () ->
                dispatch_round ctx)
        in
        dispatch_round ctx);
    on_message = (fun _ ~via:_ _ -> reached.(v) <- true);
    on_link_change = (fun _ ~peer:_ ~up:_ -> ());
  }

let run ?(config = Broadcast.default_config ()) ~graph ~root () =
  Broadcast.execute ~config ~graph ~root ~spec ()
