module Tree = Netgraph.Tree

(* Iterative worklist with explicit re-emit items: same order as the
   recursive [visit v = v :: concat (visit c @ [v])], but linear — the
   recursive form re-appends each child tour, Θ(n·depth) on paths. *)
type tour_item = Visit of int | Emit of int

let euler_tour tree =
  let rec go acc = function
    | [] -> List.rev acc
    | Visit v :: rest ->
        let rest =
          List.fold_right
            (fun c work -> Visit c :: Emit v :: work)
            (Tree.children tree v) rest
        in
        go (v :: acc) rest
    | Emit v :: rest -> go (v :: acc) rest
  in
  go [] [ Visit (Tree.root tree) ]

let euler_tour_truncated tree =
  let tour = euler_tour tree in
  (* Cut after the position of the last first visit. *)
  let seen = Hashtbl.create 16 in
  let last_new = ref 0 in
  List.iteri
    (fun i v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.replace seen v ();
        last_new := i
      end)
    tour;
  List.filteri (fun i _ -> i <= !last_new) tour

let restrict_to_depth tree depth =
  let members =
    List.filter (fun v -> Tree.depth_of tree v <= depth) (Tree.nodes tree)
  in
  let parents =
    List.filter_map
      (fun v ->
        match Tree.parent tree v with
        | None -> None
        | Some p -> Some (v, p))
      (List.filter (fun v -> v <> Tree.root tree) members)
  in
  Tree.of_parents ~root:(Tree.root tree) ~parents

let mark_first_visits walk =
  let seen = Hashtbl.create 16 in
  List.map
    (fun v ->
      let first = not (Hashtbl.mem seen v) in
      if first then Hashtbl.replace seen v ();
      (v, first))
    walk
