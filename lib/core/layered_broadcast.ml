module Tree = Netgraph.Tree
module Network = Hardware.Network
module Anr = Hardware.Anr

type msg = { origin : int }

let tour_for ~view ~root =
  let tree = Netgraph.Spanning.bfs_tree view ~root in
  let height = Tree.height tree in
  let rec layer_tours k acc =
    if k > height then List.rev acc
    else
      let sub = Walks.restrict_to_depth tree k in
      layer_tours (k + 1) (Walks.euler_tour sub :: acc)
  in
  let tours = layer_tours 1 [] in
  (* Each closed tour starts and ends at the root; splice them. *)
  let spliced =
    match tours with
    | [] -> [ root ]
    | first :: rest ->
        List.fold_left (fun acc tour -> acc @ List.tl tour) first rest
  in
  let seen = Hashtbl.create 16 in
  let last_new = ref 0 in
  List.iteri
    (fun i v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.replace seen v ();
        last_new := i
      end)
    spliced;
  List.filteri (fun i _ -> i <= !last_new) spliced

let header_length ~view ~root =
  match tour_for ~view ~root with
  | [] | [ _ ] -> 0
  | walk -> List.length walk - 1

let spec ~reached ~view v =
  {
    Network.on_start =
      (fun ctx ->
        let root = Network.self ctx in
        match tour_for ~view ~root with
        | [] | [ _ ] -> ()
        | tour ->
            let marked = Walks.mark_first_visits tour in
            let route =
              Anr.of_walk_marked (Network.graph (Network.network ctx)) marked
            in
            Network.send ~label:"layered-token" ctx ~route { origin = root });
    on_message = (fun _ ~via:_ _ -> reached.(v) <- true);
    on_link_change = (fun _ ~peer:_ ~up:_ -> ());
  }

let run ?(config = Broadcast.default_config ()) ~graph ~root () =
  Broadcast.execute ~config ~graph ~root ~spec ()
