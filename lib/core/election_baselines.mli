(** Baselines demonstrating the Ω(n log n) system-call cost of
    traditional election techniques under the new measure (Section 4).

    The paper notes that classical algorithms [B80, PKR84, KMZ84] take
    Ω(n log n) messages, and since their messages are neighbour-to-
    neighbour (each processed in software at every hop), the bound
    carries over to system calls in the new model.  We implement
    Hirschberg-Sinclair on a ring as the canonical O(n log n)
    representative, and expose the paper's own algorithm with
    supporter notification switched on as a second Θ(n log n) variant
    ({!Election.run} with [notify_supporters]). *)

type outcome = {
  leader : int;
  syscalls : int;  (** total message deliveries (all software) *)
  hops : int;
  time : float;
  phases : int;  (** phases the winning candidate ran *)
}

val run_hirschberg_sinclair :
  ?cost:Hardware.Cost_model.t ->
  ?priorities:int array ->
  n:int ->
  unit ->
  outcome
(** Hirschberg-Sinclair bidirectional election on the n-node ring
    (n >= 3): candidates probe at doubling distances; every probe and
    reply is relayed in software hop by hop, so the O(n log n) message
    bound is an O(n log n) system-call bound under the new measure.
    [priorities] (a permutation of 0..n-1; default: identity, the
    easy case) places candidate strengths around the ring;
    {!bit_reversal_priorities} realises the Θ(n log n) worst case.
    @raise Invalid_argument if [priorities] is not a permutation. *)

val bit_reversal_priorities : n:int -> int array
(** For [n] a power of two: priority of position [v] is the
    bit-reversal of [v], which keeps Θ(n / 2^k) candidates alive in
    phase k — the classical Θ(n log n) adversarial placement. *)

val run_notify_supporters :
  ?cost:Hardware.Cost_model.t ->
  ?rng:Sim.Rng.t ->
  graph:Netgraph.Graph.t ->
  unit ->
  outcome
(** The paper's algorithm with eager supporter notification: correct,
    but Θ(n log n) deliveries.  [phases] reports the captures. *)
