(** The Ω(log n) one-way broadcast lower bound (Section 3.4, Theorem 3).

    Model of the proof: on a rooted complete binary tree, time advances
    in rounds; in each round every informed node may launch at most one
    downward path per child link (two per node), and every node on a
    launched path becomes informed at the end of the round.  Theorem 3
    shows any such schedule needs Ω(log n) rounds: an adversary
    maintains, at round [t], a set of [2^t] still-uninformed nodes at
    depth [5t].

    A lower bound quantifies over {e all} algorithms, so it cannot be
    established by simulation; this module therefore provides
    (a) a machine check of the counting argument's inequalities,
    (b) a round-based simulator for the proof's model, used to measure
    concrete one-way schedules (branching-paths, greedy) and confirm
    they respect the bound while the branching-paths scheme meets the
    matching O(log n) upper bound. *)

(** {1 The counting argument} *)

val claim_inequality_holds : t:int -> bool
(** Checks [2^(5t+5) - 2 * P_t >= 2^(t+1)] where
    [P_t = sum_(s<=t) 5 * 2^s + 2] bounds the predecessors of the
    adversary's set [V_t] — the step that lets the adversary pick
    [2^(t+1)] uninformed descendants at depth [5(t+1)]. *)

val verify_claim : max_t:int -> bool
(** The inequality holds for every [1 <= t <= max_t] (checked with
    exact integer arithmetic; [max_t <= 55] to stay within 63-bit
    ints). *)

val rounds_lower_bound : n:int -> int
(** The bound Theorem 3 yields for an n-node complete binary tree:
    [max 1 ((D - 5) / 5)] rounds where [D = log2 (n+1) - 1] is the
    depth. *)

(** {1 The round-based schedule simulator} *)

type path_choice = { sender : int; path : int list }
(** A downward path launched by [sender]; [path] starts at [sender]
    and descends through tree children. *)

type strategy =
  tree:Netgraph.Tree.t -> informed:bool array -> round:int -> path_choice list
(** Chooses the paths for one round, given which nodes are informed.
    The simulator rejects choices from uninformed senders, non-downward
    paths, and two paths through the same child link. *)

val simulate :
  tree:Netgraph.Tree.t -> strategy:strategy -> max_rounds:int -> int option
(** Rounds needed to inform every tree node, or [None] if [strategy]
    fails to finish within [max_rounds].
    @raise Invalid_argument if the strategy violates the model. *)

val branching_paths_strategy : strategy
(** Every node launches its branching-path decomposition paths in the
    round after it is informed — the Section 3.1 algorithm expressed
    in this model; finishes in [1 + max_label] rounds. *)

val greedy_strategy : strategy
(** Every informed node launches, through each child link, the longest
    path whose continuation reaches uninformed nodes. *)

val eager_single_edge_strategy : strategy
(** Every informed node relays one hop to each uninformed child —
    flooding expressed in this model; needs depth-many rounds. *)
