module Tree = Netgraph.Tree

type t = {
  tree : Tree.t;
  labels : (int, int) Hashtbl.t;
  all_paths : int list list;
  by_head : (int, int list list) Hashtbl.t;
  path_depth : (int, int) Hashtbl.t;
}

let label t v =
  match Hashtbl.find_opt t.labels v with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Labels.label: node %d not in tree" v)

let tree t = t.tree

let compute tree =
  let labels = Hashtbl.create (Tree.size tree) in
  (* Leaves-up labelling; recursion depth is the tree height. *)
  let rec assign v =
    let kid_labels = List.map assign (Tree.children tree v) in
    let l =
      match List.sort (fun a b -> compare b a) kid_labels with
      | [] -> 0
      | [ top ] -> top
      | top :: second :: _ -> if top = second then top + 1 else top
    in
    Hashtbl.replace labels v l;
    l
  in
  ignore (assign (Tree.root tree));
  let lbl v = Hashtbl.find labels v in
  (* A chain headed by (u, c) exists when the edge above u (labelled
     lbl u) does not continue c's chain, i.e. u is the root or
     lbl u <> lbl c.  Extend downward through the unique same-label
     child (Lemma 1). *)
  let chain_of u c =
    let rec extend v acc =
      match List.filter (fun k -> lbl k = lbl c) (Tree.children tree v) with
      | [] -> List.rev (v :: acc)
      | [ k ] -> extend k (v :: acc)
      | _ :: _ :: _ ->
          (* would contradict Lemma 1 *)
          assert false
    in
    u :: extend c []
  in
  let all_paths = ref [] in
  let by_head = Hashtbl.create 16 in
  List.iter
    (fun u ->
      let heads_here =
        List.filter
          (fun c -> u = Tree.root tree || lbl u <> lbl c)
          (Tree.children tree u)
      in
      let chains = List.map (chain_of u) heads_here in
      if chains <> [] then Hashtbl.replace by_head u chains;
      all_paths := List.rev_append chains !all_paths)
    (Tree.nodes tree);
  let all_paths = List.rev !all_paths in
  (* Path depth: the root has depth 0; every non-head node of a path
     has depth (head's depth + 1). *)
  let path_depth = Hashtbl.create (Tree.size tree) in
  Hashtbl.replace path_depth (Tree.root tree) 0;
  let rec propagate u =
    let du = Hashtbl.find path_depth u in
    let chains = Option.value ~default:[] (Hashtbl.find_opt by_head u) in
    List.iter
      (fun chain ->
        List.iter
          (fun v ->
            if v <> u then begin
              Hashtbl.replace path_depth v (du + 1);
              propagate v
            end)
          chain)
      chains
  in
  propagate (Tree.root tree);
  { tree; labels; all_paths; by_head; path_depth }

let max_label t = label t (Tree.root t.tree)
let paths t = t.all_paths
let paths_from t v = Option.value ~default:[] (Hashtbl.find_opt t.by_head v)

let path_label t = function
  | _ :: second :: _ -> label t second
  | _ -> invalid_arg "Labels.path_label: a path has at least two nodes"

let depth_in_paths t v =
  match Hashtbl.find_opt t.path_depth v with
  | Some d -> d
  | None ->
      invalid_arg (Printf.sprintf "Labels.depth_in_paths: node %d not in tree" v)

let max_path_depth t =
  Hashtbl.fold (fun _ d acc -> max d acc) t.path_depth 0

let pp ppf t =
  Format.fprintf ppf "labels(max=%d):@." (max_label t);
  List.iter
    (fun v -> Format.fprintf ppf "  %d -> %d@." v (label t v))
    (Tree.nodes t.tree);
  Format.fprintf ppf "paths:@.";
  List.iter
    (fun p ->
      Format.fprintf ppf "  [%s] label %d@."
        (String.concat " " (List.map string_of_int p))
        (path_label t p))
    t.all_paths
