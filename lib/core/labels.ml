module Tree = Netgraph.Tree

(* Iterative, array-based labelling and path decomposition.

   [compute] runs four linear sweeps over a compact preorder index of
   the tree: (1) preorder enumeration via an explicit worklist, (2)
   labels in reverse preorder (parents follow their whole subtree, so
   descending index order is a valid post-order), (3) the unique
   same-label child per node (Lemma 1) giving O(1) chain extension,
   (4) chains and path depths in preorder of heads.  O(n) time and
   memory, stack-safe at any height — the outputs are byte-identical
   to the original recursive definition, which the parity suite in
   test/suite_labels.ml checks against a verbatim copy of it. *)

type t = {
  tree : Tree.t;
  index : (int, int) Hashtbl.t;  (* node id -> preorder index *)
  labels : int array;  (* by preorder index *)
  depths : int array;  (* path-generation depth, by preorder index *)
  all_paths : int list list;
  by_head : (int, int list list) Hashtbl.t;
  root_label : int;
  max_depth : int;
}

let tree t = t.tree

let label t v =
  match Hashtbl.find_opt t.index v with
  | Some i -> t.labels.(i)
  | None -> invalid_arg (Printf.sprintf "Labels.label: node %d not in tree" v)

let compute tree =
  let n = Tree.size tree in
  let root = Tree.root tree in
  (* (1) preorder enumeration; siblings keep Tree.children's ascending
     id order, so index order below reproduces Tree.nodes exactly *)
  let order = Array.make n root in
  let index = Hashtbl.create n in
  let parent = Array.make n (-1) in
  let count = ref 0 in
  let rec fill = function
    | [] -> ()
    | (v, pi) :: rest ->
        let i = !count in
        incr count;
        order.(i) <- v;
        Hashtbl.replace index v i;
        parent.(i) <- pi;
        fill (List.map (fun c -> (c, i)) (Tree.children tree v) @ rest)
  in
  fill [ (root, -1) ];
  (* children as indices; sibling preorder indices are assigned in push
     order, so consing downward restores ascending id order *)
  let kids = Array.make n [] in
  for i = n - 1 downto 1 do
    kids.(parent.(i)) <- i :: kids.(parent.(i))
  done;
  (* (2) labels, leaves-up: a node gets top+1 when >= 2 children carry
     the maximal child label, else top (0 at a leaf) *)
  let labels = Array.make n 0 in
  for i = n - 1 downto 0 do
    let top = ref (-1) and second = ref (-1) in
    List.iter
      (fun c ->
        let l = labels.(c) in
        if l > !top then begin
          second := !top;
          top := l
        end
        else if l > !second then second := l)
      kids.(i);
    labels.(i) <-
      (if !top < 0 then 0 else if !top = !second then !top + 1 else !top)
  done;
  (* (3) the same-label child continuing a chain — unique by Lemma 1 *)
  let chain_next = Array.make n (-1) in
  for i = 1 to n - 1 do
    let p = parent.(i) in
    if labels.(i) = labels.(p) then begin
      (* two same-label children would contradict Lemma 1 *)
      assert (chain_next.(p) = -1);
      chain_next.(p) <- i
    end
  done;
  (* (4a) chains: head u starts one chain per child whose label does
     not continue u's own chain; extension is chain_next hops *)
  let chain_of i c =
    let rec follow acc j =
      let acc = order.(j) :: acc in
      if chain_next.(j) >= 0 then follow acc chain_next.(j) else List.rev acc
    in
    order.(i) :: follow [] c
  in
  let by_head = Hashtbl.create 16 in
  let rev_paths = ref [] in
  for i = 0 to n - 1 do
    let li = labels.(i) in
    let chains =
      List.filter_map
        (fun c -> if i = 0 || labels.(c) <> li then Some (chain_of i c) else None)
        kids.(i)
    in
    if chains <> [] then Hashtbl.replace by_head order.(i) chains;
    List.iter (fun chain -> rev_paths := chain :: !rev_paths) chains
  done;
  let all_paths = List.rev !rev_paths in
  (* (4b) path depth: the root has depth 0; every non-head member of a
     chain has (head's depth + 1).  A head is the root or a non-head
     member of a chain headed strictly earlier in preorder, so one
     ascending sweep sees every head's depth before its chains. *)
  let depths = Array.make n (-1) in
  depths.(0) <- 0;
  for i = 0 to n - 1 do
    match Hashtbl.find_opt by_head order.(i) with
    | None -> ()
    | Some chains ->
        assert (depths.(i) >= 0);
        let d = depths.(i) + 1 in
        List.iter
          (fun chain ->
            List.iter
              (fun v ->
                let j = Hashtbl.find index v in
                if j <> i then depths.(j) <- d)
              chain)
          chains
  done;
  let max_depth = Array.fold_left max 0 depths in
  {
    tree;
    index;
    labels;
    depths;
    all_paths;
    by_head;
    root_label = labels.(0);
    max_depth;
  }

let max_label t = t.root_label
let paths t = t.all_paths
let paths_from t v = Option.value ~default:[] (Hashtbl.find_opt t.by_head v)

let path_label t = function
  | _ :: second :: _ -> label t second
  | _ -> invalid_arg "Labels.path_label: a path has at least two nodes"

let depth_in_paths t v =
  match Hashtbl.find_opt t.index v with
  | Some i -> t.depths.(i)
  | None ->
      invalid_arg (Printf.sprintf "Labels.depth_in_paths: node %d not in tree" v)

let max_path_depth t = t.max_depth

let pp ppf t =
  Format.fprintf ppf "labels(max=%d):@." (max_label t);
  List.iter
    (fun v -> Format.fprintf ppf "  %d -> %d@." v (label t v))
    (Tree.nodes t.tree);
  Format.fprintf ppf "paths:@.";
  List.iter
    (fun p ->
      Format.fprintf ppf "  [%s] label %d@."
        (String.concat " " (List.map string_of_int p))
        (path_label t p))
    t.all_paths
