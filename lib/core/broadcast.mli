(** Shared harness for one-shot broadcast experiments.

    Section 3 compares several ways a node can broadcast its local
    topology: flooding (ARPANET), one direct message per destination,
    a single depth-first token, the layered-BFS walk of the footnote,
    and the branching-paths scheme.  Each algorithm in this library
    exposes a [run] function returning this common {!result}, measured
    on the simulated hardware. *)

type result = {
  time : float;
      (** completion time: the last NCU activation caused by the
          broadcast (the initial activation of the root included) *)
  syscalls : int;  (** total NCU activations, root's trigger included *)
  hops : int;  (** total link traversals (traditional measure) *)
  sends : int;  (** distinct packets injected *)
  drops : int;  (** packets lost to inactive links or bad headers *)
  max_header : int;  (** longest header used, in elements *)
  reached : bool array;
      (** [reached.(v)] iff [v]'s NCU received the payload (the root
          counts as reached) *)
}

val coverage : result -> int
(** Number of nodes reached. *)

val all_reached : result -> bool

type config = {
  cost : Hardware.Cost_model.t;
  failed : (int * int) list;
      (** links inactive for the whole execution (the root's [view]
          may or may not know about them) *)
  dmax : int option;
  view : Netgraph.Graph.t option;
      (** the root's believed topology; defaults to the true graph *)
  trace : Sim.Trace.t option;
      (** when given, the run records into this trace (so the caller
          can export it afterwards) instead of a fresh internal one.
          Completion time is computed from the trace, so a disabled
          recorder yields [time = 0]. *)
  registry : Hardware.Registry.t option;
      (** when given, the hardware [net.*] family and the algorithm's
          own counters are published here *)
  chaos : Hardware.Fault_plan.t option;
      (** timed faults armed before the root starts; unlike [failed]
          these fire mid-run with full notifications and in-flight
          loss (the chaos harness's injection hook) *)
  recover : Hardware.Recover.t option;
      (** when given, algorithms that support self-healing (branching
          paths, flooding) run their ack/retransmit layer under this
          policy (DESIGN.md §16); [None] — the default — is the exact
          historical execution, no acks, no watchdogs, byte-identical
          traces *)
}

val default_config : unit -> config
(** [new_model] cost (C=0, P=1), no failures, no [dmax], true view,
    no external trace or registry, no chaos plan, no recovery. *)

(** Shared root-side ack/retransmit machinery for recovering broadcast
    algorithms; see DESIGN.md §16.  Algorithm modules create one per
    run (from the config), feed root-side acks in, and arm the
    watchdog loop from the root's [on_start]. *)
module Recovery : sig
  type t

  val create : config -> n:int -> root:int -> t option
  (** [None] iff [config.recover] is [None]. *)

  val complete : t -> bool
  (** Every node has acknowledged the payload. *)

  val ack : t -> src:int -> unit
  (** Root side: record an ack from [src] (at most once per source);
      cancels the watchdog when the last ack lands. *)

  val start : t -> 'msg Hardware.Network.context -> resend:(attempt:int -> unit) -> unit
  (** Root side: arm the watchdog loop.  Each expiry with acks still
      missing and budget left calls [resend] with the next attempt
      number (1-based) and re-arms under capped exponential backoff;
      an exhausted budget counts one [recover.give_ups] and stops. *)

  val ack_walk : Netgraph.Tree.t -> int -> int list option
  (** The walk from a member node up the broadcast tree to its root
      ([None] at the root itself or off-tree). *)
end

(** {1 Internal executor used by the algorithm modules} *)

type 'msg spec =
  reached:bool array -> view:Netgraph.Graph.t -> int -> 'msg Hardware.Network.handlers
(** Handler factory: [spec ~reached ~view v] returns node [v]'s
    handlers; they mark [reached.(v)] on delivery of the payload. *)

val execute :
  config:config ->
  graph:Netgraph.Graph.t ->
  root:int ->
  spec:'msg spec ->
  unit ->
  result
(** Build a network, apply configured failures at time 0, start the
    root, run to quiescence, and collect measurements.  [make_handlers]
    receives the [reached] array to mark deliveries and the root's
    [view]. *)
