(** The optimal computation trees of Section 5.2.

    Theorem 6 reduces optimal computation of a globally sensitive
    function on a complete graph to a tree-based convergecast over a
    fixed rooted tree, so optimality becomes a question about tree
    shape.  With worst-case hardware delay [C] per message and
    software delay [P] per NCU activation:

    - [S(t)] — the maximum number of nodes over which a tree-based
      algorithm can finish by time [t] — satisfies
      [S(t) = 0 (t < P)], [S(t) = 1 (t < 2P + C)], and
      [S(t) = S(t-P) + S(t-C-P)] (equation 3);
    - the tree itself satisfies [OT(t) = OT(t-P) <- OT(t-C-P)], where
      [<-] grafts the second tree's root as a fresh child of the
      first's root (equation 2);
    - only times of the form [iP + jC] matter, and [i, j <= n] for an
      n-node computation.

    Worked examples of the paper: [C=0, P=1] gives binomial trees with
    [S(k) = 2^(k-1)] (eq. 6); [C=1, P=1] gives Fibonacci trees with
    [S(k) = Fib(k)] (eq. 11); [C=1, P=0] (the traditional model)
    blows up — a star finishes any [n] in constant time. *)

type params = { c : float; p : float }

exception Unbounded
(** Raised by size/tree queries when [p = 0] and the requested horizon
    admits arbitrarily large trees (the traditional-model degeneracy
    of Example 2). *)

type t = { size : int; children : t list }
(** A rooted tree shape; node identities are immaterial. *)

val leaf : t
val graft : t -> t -> t
(** [graft a b] is the [<-] operation: [b]'s root becomes a new child
    of [a]'s root. *)

val size : t -> int
val depth : t -> int
val root_degree : t -> int
val nodes_per_depth : t -> int list
(** Node counts indexed by depth. *)

val s_of : ?cap:int -> params -> float -> int
(** [S(t)], saturated at [cap] (default [2^60]) — [S] grows
    exponentially in [t], so exact values at large horizons would
    overflow; callers compare against a target size anyway.
    @raise Unbounded when [p = 0] and [t >= c]. *)

val ot : params -> float -> t option
(** [OT(t)], or [None] when [S(t) = 0].
    @raise Unbounded as {!s_of}. *)

val optimal_time : params -> n:int -> float
(** The least grid time [iP + jC] at which [S(t) >= n] — the optimal
    worst-case completion time for computing a globally sensitive
    function over [n] nodes.
    @raise Unbounded when [p = 0] and [n > 1]. *)

val optimal_tree : params -> n:int -> t
(** A tree on exactly [n] nodes finishing by [optimal_time]: the
    [OT] at that time, pruned to [n] nodes (pruning never hurts the
    schedule).
    @raise Unbounded as {!optimal_time}. *)

val binomial : int -> t
(** The binomial tree [B_k] on [2^k] nodes ([B_0] is a leaf;
    [B_k = graft B_(k-1) B_(k-1)]). *)

val fibonacci : int -> t
(** The Fibonacci tree [FT_k] on [Fib(k)] nodes, [k >= 1]
    ([FT_1 = FT_2 = leaf]; [FT_k = graft FT_(k-1) FT_(k-2)]). *)

val star : int -> t
(** The star on [n] nodes: a root with [n-1] leaf children (optimal in
    the traditional model). *)

val chain : int -> t
(** The path on [n] nodes (pessimal; a useful contrast). *)

val fib : int -> int
(** The Fibonacci numbers with [fib 1 = fib 2 = 1]. *)

val enumerate_shapes : int -> t list
(** All rooted unordered trees on exactly [n] nodes, one representative
    per isomorphism class (1, 1, 2, 4, 9, 20, 48, 115, 286, 719
    shapes for n = 1..10).  Used to verify by brute force that the
    [S(t)] recursion is optimal over {e every} tree shape, not only
    the ones it constructs.  Exponential: keep [n <= 12].
    @raise Invalid_argument for [n < 1] or [n > 14]. *)

val predicted_completion : params -> t -> float
(** Worst-case completion time of the tree-based algorithm on this
    tree under the serial-NCU model: every node is triggered at time
    0 and takes [P] to start; a leaf's value then travels [C] and
    each parent processes arrivals one [P] at a time in FIFO order,
    forwarding when its subtree is complete.  For [OT(t)] this equals
    exactly the defining [t] (validated in the tests and against the
    discrete-event simulation). *)

val to_netgraph_tree : t -> Netgraph.Tree.t
(** Concretise with breadth-first node numbering, root = 0. *)

val pp : Format.formatter -> t -> unit
