(** The tree-labelling and branching-path decomposition of Section 3.1.

    Labels are assigned leaves-up: a leaf gets 0; an interior node gets
    [l + 1] if at least two of its children carry the maximal child
    label [l], and [l] otherwise.  (This is the Strahler number of the
    rooted tree.)  Lemma 1: a node of label [l] has at most one child
    of label [l], so the edges of each label form vertex-disjoint
    downward chains; Theorem 2: the root's label is at most [log2 n].

    The decomposition cuts the tree into these maximal monochromatic
    chains ("branching paths").  Every non-root node lies on exactly
    one chain (the one containing its parent edge); the chain's {e
    head} is the upper endpoint, which relays the broadcast onto it. *)

type t

val compute : Netgraph.Tree.t -> t

val label : t -> int -> int
(** The label of a member node.
    @raise Invalid_argument if the node is not in the tree. *)

val max_label : t -> int
(** The root's label — the largest label in the tree (labels are
    monotone up every root-ward path). *)

val tree : t -> Netgraph.Tree.t

val paths : t -> int list list
(** The branching paths.  Each path is the node sequence
    [head; c1; c2; ...] along one maximal monochromatic chain (at
    least two nodes).  Every tree edge appears in exactly one path;
    every non-root node appears as a non-head of exactly one path.
    Paths are listed in preorder of their heads, then by first child. *)

val paths_from : t -> int -> int list list
(** The paths whose head is the given node.  At most one per child
    link, so at most the node's degree (the broadcast primitive can
    ship them all in one activation). *)

val path_label : t -> int list -> int
(** The common edge label of a decomposition path. *)

val depth_in_paths : t -> int -> int
(** The number of distinct paths a broadcast relayed along the
    decomposition crosses to reach the node from the root: 0 for the
    root, 1 for nodes on a path headed by the root, etc.  Theorem 2
    shows this is at most [1 + max_label - path_label] for the node's
    own path, hence at most [1 + log2 n]. *)

val max_path_depth : t -> int
(** Maximum of {!depth_in_paths} over all nodes — the number of time
    units the branching-paths broadcast needs. *)

val pp : Format.formatter -> t -> unit
