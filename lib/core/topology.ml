module Graph = Netgraph.Graph

(* A local view is a delta against the physical adjacency: the origin
   has reported, and every incident link is believed up except the
   peers listed in [downs].  Healthy nodes all share [no_downs], so a
   steady-state view costs four words regardless of degree — the
   Θ(deg) [(peer * bool) list] payloads this replaces dominated a
   maintenance round's allocation. *)
type local_view = { origin : int; seq : int; downs : int array }

let no_downs : int array = [||]

let view_of_downs ~origin ~seq downs =
  let downs =
    if Array.length downs = 0 then no_downs
    else begin
      let d = Array.copy downs in
      Array.sort compare d;
      d
    end
  in
  { origin; seq; downs }

(* membership in the sorted [downs] array *)
let reports_down view peer =
  let d = view.downs in
  let rec bs lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if d.(mid) = peer then true
      else if d.(mid) < peer then bs (mid + 1) hi
      else bs lo mid
  in
  bs 0 (Array.length d)

(* A database is an overlay hashtable over an optional shared [base]:
   preseeding n nodes with full topology knowledge installs ONE
   seq-0 view array shared by every database (Θ(n) total instead of
   Θ(n²) per-node entries), and received views shadow it in the
   overlay. *)
type db = {
  mutable base : local_view array option;  (* indexed by origin *)
  tbl : (int, local_view) Hashtbl.t;
}

let create () = { base = None; tbl = Hashtbl.create 16 }

let attach_base db views = db.base <- Some views

let find db origin =
  match Hashtbl.find_opt db.tbl origin with
  | Some _ as v -> v
  | None -> (
      match db.base with
      | Some b when origin >= 0 && origin < Array.length b -> Some b.(origin)
      | _ -> None)

let update db view =
  match find db view.origin with
  | Some stored when stored.seq >= view.seq -> false
  | _ ->
      Hashtbl.replace db.tbl view.origin view;
      true

let update_all db views =
  List.fold_left (fun acc v -> update db v || acc) false views

let set_own db view = Hashtbl.replace db.tbl view.origin view

let all_views db =
  match db.base with
  | None ->
      Hashtbl.fold (fun _ v acc -> v :: acc) db.tbl []
      |> List.sort (fun a b -> compare a.origin b.origin)
  | Some b ->
      (* the base covers every origin densely; the overlay shadows *)
      Array.to_list
        (Array.mapi
           (fun o bv ->
             match Hashtbl.find_opt db.tbl o with Some v -> v | None -> bv)
           b)

let known_nodes db = List.map (fun v -> v.origin) (all_views db)

(* An edge of the physical graph is believed active iff at least one
   endpoint has reported and no reporting endpoint lists the other as
   down (the ARPANET AND rule; a single report is trusted).  Views are
   deltas, so the enumeration runs over the physical edge set — the
   believed graph is a subgraph of the real one by construction. *)
let believed_edge db u v =
  match (find db u, find db v) with
  | None, None -> false
  | Some vu, None -> not (reports_down vu v)
  | None, Some vv -> not (reports_down vv u)
  | Some vu, Some vv -> not (reports_down vu v) && not (reports_down vv u)

let believed_graph db ~graph =
  let edges =
    List.filter (fun (u, v) -> believed_edge db u v) (Graph.edges graph)
  in
  Graph.of_edges ~n:(Graph.n graph) edges

let consistent_with db ~graph ~actual ~node =
  let n = Graph.n actual in
  let believed = believed_graph db ~graph in
  let actual_component = Netgraph.Traversal.component_of actual node in
  let believed_component = Netgraph.Traversal.component_of believed node in
  actual_component = believed_component
  &&
  let in_component = Array.make n false in
  List.iter (fun v -> in_component.(v) <- true) actual_component;
  let restrict g =
    List.filter
      (fun (u, v) -> in_component.(u) && in_component.(v))
      (Graph.edges g)
  in
  restrict believed = restrict actual
