module Graph = Netgraph.Graph

type local_view = { origin : int; seq : int; links : (int * bool) list }

type db = (int, local_view) Hashtbl.t

let create () = Hashtbl.create 16

let update db view =
  match Hashtbl.find_opt db view.origin with
  | Some stored when stored.seq >= view.seq -> false
  | _ ->
      Hashtbl.replace db view.origin view;
      true

let update_all db views =
  List.fold_left (fun acc v -> update db v || acc) false views

let set_own db view = Hashtbl.replace db view.origin view

let find db origin = Hashtbl.find_opt db origin

let all_views db =
  Hashtbl.fold (fun _ v acc -> v :: acc) db []
  |> List.sort (fun a b -> compare a.origin b.origin)

let known_nodes db = List.map (fun v -> v.origin) (all_views db)

let believed_graph db ~n =
  (* Gather directed reports, then apply the both-endpoints rule. *)
  let reports = Hashtbl.create 32 in
  Hashtbl.iter
    (fun origin view ->
      List.iter
        (fun (peer, up) ->
          if peer >= 0 && peer < n && origin < n then
            Hashtbl.replace reports (origin, peer) up)
        view.links)
    db;
  let edges = ref [] in
  Hashtbl.iter
    (fun (u, v) up_uv ->
      if u < v then begin
        let believed_up =
          match Hashtbl.find_opt reports (v, u) with
          | Some up_vu -> up_uv && up_vu
          | None -> up_uv
        in
        if believed_up then edges := (u, v) :: !edges
      end)
    reports;
  (* Symmetric singletons: v reported (v, u) but u never reported. *)
  Hashtbl.iter
    (fun (u, v) up_uv ->
      if u > v && not (Hashtbl.mem reports (v, u)) && up_uv then
        edges := (v, u) :: !edges)
    reports;
  Graph.of_edges ~n !edges

let consistent_with db ~actual ~node =
  let n = Graph.n actual in
  let believed = believed_graph db ~n in
  let actual_component = Netgraph.Traversal.component_of actual node in
  let believed_component = Netgraph.Traversal.component_of believed node in
  actual_component = believed_component
  &&
  let in_component = Array.make n false in
  List.iter (fun v -> in_component.(v) <- true) actual_component;
  let restrict g =
    List.filter
      (fun (u, v) -> in_component.(u) && in_component.(v))
      (Graph.edges g)
  in
  restrict believed = restrict actual
